#include <gtest/gtest.h>

#include <string>
#include <thread>

#include "runtime/threaded_smr_cluster.hpp"

/// The pipelined SMR engine over real OS threads and wall-clock time: the
/// identical engine code that runs on the deterministic simulator, driven
/// through engine::ThreadedHost. These tests cover the properties that
/// need a clock to even exist on the threaded runtime — wall-clock view
/// change under a crashed leader, in-slot-order apply with a deep
/// pipeline, and watermark-based catch-up GC.

namespace fastbft::runtime {
namespace {

using namespace std::chrono_literals;

smr::Command cmd(std::uint64_t i) {
  return smr::Command::put("key" + std::to_string(i),
                           "val" + std::to_string(i), /*client=*/1,
                           /*sequence=*/i);
}

void expect_applied_in_slot_order(const std::vector<Slot>& slots,
                                  ProcessId pid) {
  for (std::size_t i = 0; i < slots.size(); ++i) {
    ASSERT_EQ(slots[i], static_cast<Slot>(i + 1))
        << "p" << pid << " applied slots out of order at position " << i;
  }
}

TEST(ThreadedSmr, HealthyPipelinedRunAppliesInOrder) {
  auto cfg = consensus::QuorumConfig::create(4, 1, 1);
  ThreadedSmrClusterOptions options;
  options.smr.max_batch = 4;
  options.smr.pipeline_depth = 4;
  options.smr.target_commands = 60;
  ThreadedSmrCluster cluster(cfg, options);
  for (std::uint64_t i = 1; i <= 60; ++i) cluster.submit(cmd(i));
  cluster.start();
  ASSERT_TRUE(cluster.wait_applied(60, 20s));
  cluster.stop();

  for (ProcessId id = 0; id < 4; ++id) {
    EXPECT_GE(cluster.applied_commands(id), 60u) << "p" << id;
    expect_applied_in_slot_order(cluster.applied_slots(id), id);
  }
  EXPECT_TRUE(cluster.correct_stores_agree());
  EXPECT_EQ(cluster.node(0).store().get("key7"), "val7");
}

TEST(ThreadedSmr, LeaderCrashMidRunSurvivedByWallClockViewChange) {
  // The acceptance scenario: n = 6, f = 1, pipeline_depth = 8, one
  // replica crashed mid-run. With rotate_leaders the crashed process is
  // the initial leader of every sixth slot; those slots stall until their
  // wall-clock view-change timeout while later slots keep deciding, so
  // the reorder buffer must hold decisions and every correct replica must
  // still apply >= 200 commands in strict slot order.
  auto cfg = consensus::QuorumConfig::create(6, 1, 1);
  ThreadedSmrClusterOptions options;
  options.smr.max_batch = 8;
  options.smr.pipeline_depth = 8;
  options.smr.rotate_leaders = true;
  options.smr.target_commands = 240;
  ThreadedSmrCluster cluster(cfg, options);
  for (std::uint64_t i = 1; i <= 240; ++i) cluster.submit(cmd(i));
  cluster.start();

  // Let the pipeline get going, then fail-stop p2 (initial leader of
  // slots 3, 9, 15, ... under rotation) while its slots are in flight.
  ASSERT_TRUE(cluster.wait_applied(24, 30s));
  cluster.crash(2);

  ASSERT_TRUE(cluster.wait_applied(240, 120s))
      << "correct replicas must keep applying through the crash";
  cluster.stop();

  EXPECT_GT(cluster.timers_fired(), 0u)
      << "progress past the crashed leader requires wall-clock timeouts";
  for (ProcessId id = 0; id < 6; ++id) {
    if (cluster.is_faulty(id)) continue;
    EXPECT_GE(cluster.applied_commands(id), 240u) << "p" << id;
    expect_applied_in_slot_order(cluster.applied_slots(id), id);
  }
  EXPECT_TRUE(cluster.correct_stores_agree());
  EXPECT_EQ(cluster.node(0).store().get("key123"), "val123");
}

TEST(ThreadedSmr, WatermarkGossipBoundsCatchUpRetention) {
  // batch 1 makes many slots; the applied watermark gossiped in wrapped
  // traffic must let every replica prune decided values that the whole
  // cluster already applied, instead of retaining all of them forever.
  auto cfg = consensus::QuorumConfig::create(4, 1, 1);
  ThreadedSmrClusterOptions options;
  options.smr.max_batch = 1;
  options.smr.pipeline_depth = 4;
  options.smr.target_commands = 120;
  ThreadedSmrCluster cluster(cfg, options);
  for (std::uint64_t i = 1; i <= 120; ++i) cluster.submit(cmd(i));
  cluster.start();
  ASSERT_TRUE(cluster.wait_applied(120, 60s));
  cluster.stop();

  for (ProcessId id = 0; id < 4; ++id) {
    const auto& engine = cluster.node(id).engine();
    EXPECT_GT(engine.catchup().pruned_count(), 0u)
        << "p" << id << " never pruned";
    EXPECT_LT(engine.catchup().decided_count(),
              static_cast<std::size_t>(engine.highest_started()))
        << "p" << id << " retains every decided value";
    expect_applied_in_slot_order(cluster.applied_slots(id), id);
  }
}

TEST(ThreadedSmr, CrashedReplicaRejoinsViaSnapshotStateTransfer) {
  // Crash -> watermark pin -> snapshot-based rejoin, on real threads and
  // wall-clock time: p3 fail-stops mid-run, the survivors snapshot past
  // its crash point (pruning the slots it would need to replay), and a
  // factory-fresh p3 rejoins mid-run. It can only recover through
  // SNAPSHOT_REQUEST/RESPONSE state transfer, after which it applies in
  // order and converges to the same store digest as everyone else.
  auto cfg = consensus::QuorumConfig::create(4, 1, 1);
  ThreadedSmrClusterOptions options;
  options.smr.max_batch = 1;          // one slot per command: many slots
  options.smr.pipeline_depth = 4;
  options.smr.target_commands = 0;    // keep slots (and gossip) flowing
  options.smr.snapshot_interval = 8;
  options.smr.snapshot_chunk_bytes = 128;  // force multi-chunk transfers
  ThreadedSmrCluster cluster(cfg, options);
  for (std::uint64_t i = 1; i <= 60; ++i) cluster.submit(cmd(i));
  cluster.start();

  ASSERT_TRUE(cluster.wait_applied(20, 60s));
  cluster.crash(3);
  Slot crash_slot = cluster.applied_slots(3).empty()
                        ? 1
                        : cluster.applied_slots(3).back();

  // Survivors work well past the crash point — and past several snapshot
  // boundaries — while p3 is down.
  for (std::uint64_t i = 61; i <= 120; ++i) cluster.submit(cmd(i), 0);
  ASSERT_TRUE(cluster.wait_applied(100, 120s));

  cluster.restart(3);
  ASSERT_TRUE(cluster.wait_applied(120, 120s))
      << "the rejoined replica must catch back up to the whole log";

  // A snapshot alone can satisfy the command count; keep feeding commands
  // until p3 demonstrably applies slots LIVE (post-install) too.
  std::uint64_t next_cmd = 121;
  for (int round = 0;
       round < 1200 && cluster.applied_slots(3).size() < 5; ++round) {
    cluster.submit(cmd(next_cmd++), /*gateway=*/0);
    std::this_thread::sleep_for(25ms);
  }
  ASSERT_GE(cluster.applied_slots(3).size(), 5u)
      << "the rejoined replica never resumed applying live slots";
  ASSERT_TRUE(cluster.wait_applied(next_cmd - 1, 120s));
  cluster.stop();

  // Recovery went through a snapshot install, not slot-by-slot replay.
  EXPECT_GE(cluster.snapshots_installed(3), 1u);
  EXPECT_GE(cluster.node(3).engine().snapshots_installed(), 1u);

  // The fresh incarnation's applies start past the snapshot boundary and
  // run strictly in order (jumps only ever forward, at installs).
  const auto slots = cluster.applied_slots(3);
  ASSERT_FALSE(slots.empty());
  EXPECT_GT(slots.front(), 1u) << "a rejoiner must not re-apply from slot 1";
  for (std::size_t i = 1; i < slots.size(); ++i) {
    ASSERT_GT(slots[i], slots[i - 1]) << "p3 applied out of order";
  }

  // All four replicas — including the rejoined one — agree byte-for-byte.
  EXPECT_TRUE(cluster.correct_stores_agree());
  EXPECT_EQ(cluster.node(3).store().get("key100"), "val100");

  // Retention unpinned: the survivors pruned decided values past p3's
  // crash point while it was down, instead of retaining every decision
  // from the crash onward.
  for (ProcessId id = 0; id < 3; ++id) {
    const auto& catchup = cluster.node(id).engine().catchup();
    EXPECT_GT(catchup.prune_floor(), crash_slot) << "p" << id;
    EXPECT_LT(catchup.decided_count(),
              static_cast<std::size_t>(
                  cluster.node(id).engine().highest_started()))
        << "p" << id;
  }
}

TEST(ThreadedSmr, PreStartCrashIsToleratedFromSlotOne) {
  // Crash-before-start: the faulty process never sends a byte; every slot
  // it would have led view-changes on the wall clock from the beginning.
  auto cfg = consensus::QuorumConfig::create(6, 1, 1);
  ThreadedSmrClusterOptions options;
  options.smr.max_batch = 4;
  options.smr.pipeline_depth = 2;
  options.smr.rotate_leaders = true;
  options.smr.target_commands = 20;
  ThreadedSmrCluster cluster(cfg, options);
  cluster.crash(0);  // initial leader of slot 1
  for (std::uint64_t i = 1; i <= 20; ++i) cluster.submit(cmd(i));
  cluster.start();
  ASSERT_TRUE(cluster.wait_applied(20, 60s));
  cluster.stop();
  for (ProcessId id = 1; id < 6; ++id) {
    EXPECT_GE(cluster.applied_commands(id), 20u) << "p" << id;
    expect_applied_in_slot_order(cluster.applied_slots(id), id);
  }
  EXPECT_TRUE(cluster.correct_stores_agree());
}

}  // namespace
}  // namespace fastbft::runtime
