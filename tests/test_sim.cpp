#include <gtest/gtest.h>

#include "sim/random.hpp"
#include "sim/scheduler.hpp"

namespace fastbft::sim {
namespace {

// --- Rng ---------------------------------------------------------------------

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    std::uint64_t va = a.next_u64();
    EXPECT_EQ(va, b.next_u64());
    (void)c.next_u64();
  }
  Rng a2(42), c2(43);
  EXPECT_NE(a2.next_u64(), c2.next_u64());
}

TEST(Rng, RangeBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(10), 10u);
    std::int64_t v = rng.next_in_range(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
  EXPECT_EQ(rng.next_in_range(3, 3), 3);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0, 10));
    EXPECT_TRUE(rng.chance(10, 10));
  }
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(9);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Rng, ForkIndependence) {
  Rng parent(1);
  Rng child_a = parent.fork(1);
  Rng child_b = parent.fork(1);
  // Forks advance the parent, so consecutive forks differ.
  EXPECT_NE(child_a.next_u64(), child_b.next_u64());
}

// --- Scheduler ---------------------------------------------------------------

TEST(Scheduler, RunsInTimeOrder) {
  Scheduler sched;
  std::vector<int> order;
  sched.schedule_at(30, [&] { order.push_back(3); });
  sched.schedule_at(10, [&] { order.push_back(1); });
  sched.schedule_at(20, [&] { order.push_back(2); });
  sched.run_to_completion();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sched.now(), 30);
}

TEST(Scheduler, FifoWithinSameTime) {
  Scheduler sched;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sched.schedule_at(10, [&order, i] { order.push_back(i); });
  }
  sched.run_to_completion();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Scheduler, NestedScheduling) {
  Scheduler sched;
  std::vector<TimePoint> fired;
  sched.schedule_at(10, [&] {
    fired.push_back(sched.now());
    sched.schedule_after(5, [&] { fired.push_back(sched.now()); });
  });
  sched.run_to_completion();
  EXPECT_EQ(fired, (std::vector<TimePoint>{10, 15}));
}

TEST(Scheduler, CancelPreventsExecution) {
  Scheduler sched;
  bool fired = false;
  TimerHandle h = sched.schedule_at(10, [&] { fired = true; });
  EXPECT_TRUE(h.active());
  h.cancel();
  EXPECT_FALSE(h.active());
  sched.run_to_completion();
  EXPECT_FALSE(fired);
}

TEST(Scheduler, RunUntilStopsAtLimit) {
  Scheduler sched;
  int count = 0;
  sched.schedule_at(10, [&] { ++count; });
  sched.schedule_at(20, [&] { ++count; });
  sched.schedule_at(30, [&] { ++count; });
  sched.run_until(20);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(sched.now(), 20);
  EXPECT_EQ(sched.pending_events(), 1u);
}

TEST(Scheduler, RunUntilAdvancesTimeWithEmptyQueue) {
  Scheduler sched;
  sched.run_until(500);
  EXPECT_EQ(sched.now(), 500);
}

TEST(Scheduler, StepReturnsFalseWhenDrained) {
  Scheduler sched;
  EXPECT_FALSE(sched.step());
  sched.schedule_at(1, [] {});
  EXPECT_TRUE(sched.step());
  EXPECT_FALSE(sched.step());
  EXPECT_EQ(sched.executed_events(), 1u);
}

}  // namespace
}  // namespace fastbft::sim
