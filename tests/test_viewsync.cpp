#include <gtest/gtest.h>

#include "net/sim_network.hpp"
#include "viewsync/synchronizer.hpp"

/// The synchronizer's three required properties (Section 3 of the paper),
/// exercised over the simulated network.

namespace fastbft::viewsync {
namespace {

struct SyncHarness {
  explicit SyncHarness(std::uint32_t n, std::uint32_t f,
                       net::SimNetworkConfig net_cfg = {},
                       Duration base_timeout = 1000) {
    net_cfg.delta = 100;
    if (net_cfg.min_delay == 0) net_cfg.min_delay = 100;
    network = std::make_unique<net::SimNetwork>(sched, n, net_cfg);
    for (ProcessId id = 0; id < n; ++id) {
      endpoints.push_back(network->endpoint(id));
      SynchronizerConfig cfg;
      cfg.base_timeout = base_timeout;
      cfg.f = f;
      syncs.push_back(std::make_unique<Synchronizer>(
          cfg, id, *endpoints.back(), sched, [this, id](View v) {
            entered[id].push_back({v, sched.now()});
          }));
      network->attach(id, [this, id](ProcessId from, const Bytes& payload) {
        syncs[id]->on_message(from, payload);
      });
    }
  }

  void start_all() {
    for (auto& s : syncs) s->start();
  }

  sim::Scheduler sched;
  std::unique_ptr<net::SimNetwork> network;
  std::vector<std::unique_ptr<net::SimEndpoint>> endpoints;
  std::vector<std::unique_ptr<Synchronizer>> syncs;
  std::map<ProcessId, std::vector<std::pair<View, TimePoint>>> entered;
};

TEST(WishMsg, Roundtrip) {
  WishMsg m{42};
  auto parsed = parse_wish(m.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->w, 42u);
}

TEST(WishMsg, RejectsForeignAndMalformed) {
  EXPECT_FALSE(parse_wish({}).has_value());
  EXPECT_FALSE(parse_wish(Bytes{0x01, 0x02}).has_value());  // consensus tag
  Bytes truncated = WishMsg{42}.serialize();
  truncated.pop_back();
  EXPECT_FALSE(parse_wish(truncated).has_value());
}

TEST(Synchronizer, NoTimeoutNoViewChange) {
  SyncHarness h(4, 1);
  h.start_all();
  h.sched.run_until(900);  // below base_timeout
  for (const auto& [id, views] : h.entered) {
    EXPECT_TRUE(views.empty());
  }
}

TEST(Synchronizer, AllTimeoutsAdvanceTogether) {
  SyncHarness h(4, 1);
  h.start_all();
  h.sched.run_until(1'500);
  for (ProcessId id = 0; id < 4; ++id) {
    ASSERT_FALSE(h.entered[id].empty()) << "p" << id;
    EXPECT_EQ(h.entered[id].front().first, 2u);
  }
}

TEST(Synchronizer, ViewsNeverDecrease) {
  SyncHarness h(4, 1, {}, 500);
  h.start_all();
  h.sched.run_until(20'000);
  for (ProcessId id = 0; id < 4; ++id) {
    View last = 1;
    for (const auto& [v, time] : h.entered[id]) {
      EXPECT_GT(v, last) << "p" << id;
      last = v;
    }
    EXPECT_GT(last, 2u) << "views must keep advancing while un-stopped";
  }
}

TEST(Synchronizer, LaggardsAreDraggedForward) {
  // Only 3 of 4 processes run timers (one never times out — e.g. its timer
  // is hugely long); f+1 amplification must still pull it into new views.
  SyncHarness h(4, 1);
  for (ProcessId id = 0; id < 3; ++id) h.syncs[id]->start();
  // p3 never starts its timer but still receives wishes.
  h.sched.run_until(2'000);
  ASSERT_FALSE(h.entered[3].empty());
  EXPECT_EQ(h.entered[3].front().first, 2u);
}

TEST(Synchronizer, StopFreezesView) {
  SyncHarness h(4, 1, {}, 500);
  h.start_all();
  h.sched.run_until(700);
  h.syncs[0]->stop();
  std::size_t count_at_stop = h.entered[0].size();
  h.sched.run_until(10'000);
  EXPECT_EQ(h.entered[0].size(), count_at_stop);
}

TEST(Synchronizer, ByzantineWishesCannotForceViewChange) {
  // f Byzantine wishers alone (no correct timeout) must not move anyone:
  // entering needs 2f+1 distinct wishers.
  SyncHarness h(4, 1, {}, 1'000'000);  // correct timers effectively never fire
  h.start_all();
  // One Byzantine process (f = 1) spams wishes for view 99.
  h.endpoints[3]->broadcast_others(WishMsg{99}.serialize());
  h.sched.run_until(50'000);
  for (ProcessId id = 0; id < 3; ++id) {
    EXPECT_TRUE(h.entered[id].empty()) << "p" << id;
  }
}

TEST(Synchronizer, TimeoutsGrowExponentially) {
  SyncHarness h(4, 1, {}, 500);
  h.start_all();
  h.sched.run_until(200'000);
  // Gaps between consecutive view entries must grow.
  const auto& views = h.entered[0];
  ASSERT_GE(views.size(), 4u);
  Duration prev_gap = 0;
  for (std::size_t i = 1; i < views.size(); ++i) {
    Duration gap = views[i].second - views[i - 1].second;
    EXPECT_GE(gap, prev_gap);
    prev_gap = gap;
  }
}

TEST(Synchronizer, ConvergesDespitePreGstChaos) {
  net::SimNetworkConfig net_cfg;
  net_cfg.gst = 10'000;
  net_cfg.pre_gst_max_delay = 8'000;
  net_cfg.seed = 11;
  SyncHarness h(7, 2, net_cfg, 800);
  h.start_all();
  h.sched.run_until(120'000);
  // All processes eventually share a recent view.
  View max_view = 0;
  for (ProcessId id = 0; id < 7; ++id) {
    ASSERT_FALSE(h.entered[id].empty());
    max_view = std::max(max_view, h.entered[id].back().first);
  }
  for (ProcessId id = 0; id < 7; ++id) {
    EXPECT_GE(h.syncs[id]->view() + 1, max_view) << "p" << id;
  }
}


TEST(Synchronizer, PostGstStabilityWindow) {
  // Property 3 of the paper: once a correct leader is elected after GST,
  // no correct process changes its view for at least 5 * Delta. With a
  // base timeout of >= 5 * Delta and exponential growth, every view
  // entered after GST lasts at least that long.
  net::SimNetworkConfig net_cfg;
  net_cfg.gst = 5'000;
  net_cfg.pre_gst_max_delay = 4'000;
  net_cfg.seed = 3;
  SyncHarness h(4, 1, net_cfg, /*base_timeout=*/600);  // 6 * Delta
  h.start_all();
  h.sched.run_until(400'000);

  // "Elected" means every correct process holds the view. For each view
  // elected after GST, the window [last entry, first exit] must span at
  // least 5 * Delta. (Individual processes may transit stale views quickly
  // while catching up — that is allowed.)
  std::map<View, TimePoint> last_entry, first_exit;
  for (ProcessId id = 0; id < 4; ++id) {
    const auto& entries = h.entered[id];
    for (std::size_t i = 0; i < entries.size(); ++i) {
      auto [v, at] = entries[i];
      last_entry[v] = std::max(last_entry.contains(v) ? last_entry[v] : 0, at);
      if (i + 1 < entries.size()) {
        TimePoint exit = entries[i + 1].second;
        first_exit[v] = first_exit.contains(v)
                            ? std::min(first_exit[v], exit)
                            : exit;
      }
    }
  }
  int checked = 0;
  for (const auto& [v, entry] : last_entry) {
    // Skip views whose WISH exchange may straddle GST (stale pre-GST
    // wishes can arrive up to GST + Delta and smear the election).
    if (entry < 6'000 || !first_exit.contains(v)) continue;
    EXPECT_GE(first_exit[v] - entry, 500) << "view " << v;
    ++checked;
  }
  EXPECT_GT(checked, 0) << "at least one post-GST elected view expected";
}

TEST(Synchronizer, AllCorrectConvergeToSameViewEventually) {
  SyncHarness h(7, 2, {}, 700);
  h.start_all();
  h.sched.run_until(3'000);
  // After the shared timeout everyone should sit in the same view.
  View v0 = h.syncs[0]->view();
  for (ProcessId id = 1; id < 7; ++id) {
    EXPECT_EQ(h.syncs[id]->view(), v0) << "p" << id;
  }
  EXPECT_GT(v0, 1u);
}

TEST(Synchronizer, TimeoutCounterAdvances) {
  SyncHarness h(4, 1, {}, 500);
  h.start_all();
  h.sched.run_until(10'000);
  EXPECT_GT(h.syncs[0]->timeouts_fired(), 1u);
}
}  // namespace
}  // namespace fastbft::viewsync
