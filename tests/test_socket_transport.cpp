#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/frame.hpp"
#include "net/socket_network.hpp"
#include "runtime/socket_smr.hpp"

/// Integration tests for the TCP socket transport — the ONE test binary
/// that touches real sockets (everything message-level lives in
/// tests/test_frame.cpp). Each test stands up separate SocketNetwork
/// instances inside this process connected only through loopback TCP, so
/// every delivery crosses a real kernel socket: framing, handshakes,
/// write coalescing, reconnect, rx-expiry and the zero-copy counters are
/// all exercised end to end. NOT in the TSan target list (ctest tier 1
/// only): the multi-network setup is socket-latency bound, and the
/// transport's threading is already covered by the TSan'd threaded tests
/// sharing the same host contract.

namespace fastbft::net {
namespace {

using namespace std::chrono_literals;

/// Spin-waits (socket latency, not simulated time) for `cond` or fails.
bool eventually(const std::function<bool()>& cond,
                std::chrono::milliseconds budget = 5000ms) {
  const auto give_up = std::chrono::steady_clock::now() + budget;
  while (std::chrono::steady_clock::now() < give_up) {
    if (cond()) return true;
    std::this_thread::sleep_for(1ms);
  }
  return cond();
}

/// Pre-binds a loopback listener on a kernel-chosen port, so tests never
/// race on port numbers (the same trick bench E15's parent process uses).
struct BoundListener {
  int fd = -1;
  std::uint16_t port = 0;
};

BoundListener bind_loopback() {
  BoundListener out;
  out.fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
  EXPECT_GE(out.fd, 0);
  int one = 1;
  ::setsockopt(out.fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  socklen_t len = sizeof(addr);
  EXPECT_EQ(::bind(out.fd, reinterpret_cast<sockaddr*>(&addr), len), 0);
  EXPECT_EQ(::listen(out.fd, 16), 0);
  EXPECT_EQ(::getsockname(out.fd, reinterpret_cast<sockaddr*>(&addr), &len),
            0);
  out.port = ntohs(addr.sin_port);
  return out;
}

/// One locally hosted endpoint with its own SocketNetwork, so traffic to
/// every other endpoint crosses a real TCP connection.
struct Node {
  std::unique_ptr<SocketNetwork> net;
  std::unique_ptr<SocketEndpoint> endpoint;
  std::mutex mutex;
  std::vector<std::pair<ProcessId, Bytes>> received;

  std::size_t count() {
    std::lock_guard<std::mutex> lk(mutex);
    return received.size();
  }
};

std::unique_ptr<Node> make_node(const SocketNetworkConfig& config,
                                ProcessId id, int adopted_fd = -1) {
  auto node = std::make_unique<Node>();
  SocketNetworkConfig own = config;
  if (adopted_fd >= 0) own.peers[id].adopted_listen_fd = adopted_fd;
  node->net = std::make_unique<SocketNetwork>(own);
  Node* raw = node.get();
  node->net->attach(id, [raw](ProcessId from, const Bytes& payload) {
    std::lock_guard<std::mutex> lk(raw->mutex);
    raw->received.emplace_back(from, payload);
  });
  node->endpoint = node->net->endpoint(id);
  node->net->start();
  return node;
}

SharedBytes payload_of(const std::string& s) {
  return SharedBytes(Bytes(s.begin(), s.end()));
}

// --- Delivery ----------------------------------------------------------------

TEST(SocketTransportTest, DeliversBothDirectionsOverOneConnection) {
  auto listener = bind_loopback();
  SocketNetworkConfig config;
  config.cluster_size = 2;
  config.peers.resize(2);
  config.peers[0].port = listener.port;  // id 1 dials id 0

  auto a = make_node(config, 0, listener.fd);
  auto b = make_node(config, 1);

  b->endpoint->send(0, payload_of("ping"));
  ASSERT_TRUE(eventually([&] { return a->count() >= 1; }));
  a->endpoint->send(1, payload_of("pong"));
  ASSERT_TRUE(eventually([&] { return b->count() >= 1; }));

  EXPECT_EQ(a->received[0].first, 1u);
  EXPECT_EQ(Bytes(a->received[0].second), Bytes({'p', 'i', 'n', 'g'}));
  EXPECT_EQ(b->received[0].first, 0u);

  // Exactly one TCP connection serves the pair: the dialer (higher id)
  // attempted it, the listener side never dialed.
  EXPECT_GE(b->net->link_stats(1, 0).connects_established, 1u);
  EXPECT_EQ(a->net->link_stats(0, 1).connects_attempted, 0u);

  b->net->stop();
  a->net->stop();
}

TEST(SocketTransportTest, BroadcastSharesOnePayloadBuffer) {
  // ids 0 and 1 listen; id 2 (the sender) dials both lower ids, so the
  // fan-out crosses two distinct TCP connections.
  auto l0 = bind_loopback();
  auto l1 = bind_loopback();
  SocketNetworkConfig config;
  config.cluster_size = 3;
  config.peers.resize(3);
  config.peers[0].port = l0.port;
  config.peers[1].port = l1.port;

  auto a = make_node(config, 0, l0.fd);
  auto b = make_node(config, 1, l1.fd);
  auto c = make_node(config, 2);  // dials both listeners

  // One 64-byte payload fanned to two remote peers must be materialized
  // exactly once (SharedBytes aliased by both send queues; writev
  // scatter-gathers straight out of it — PR 4's zero-copy discipline).
  ASSERT_TRUE(eventually([&] {
    return c->net->link_stats(2, 0).connects_established >= 1 &&
           c->net->link_stats(2, 1).connects_established >= 1;
  }));
  PayloadStats::reset();
  SharedBytes payload(Bytes(64, 0xab));
  EXPECT_EQ(PayloadStats::allocs(), 1u);
  c->endpoint->send(0, payload);
  c->endpoint->send(1, payload);
  ASSERT_TRUE(eventually([&] { return a->count() >= 1 && b->count() >= 1; }));
  EXPECT_EQ(PayloadStats::allocs(), 1u);  // no per-link copies appeared
  EXPECT_EQ(a->received[0].second.size(), 64u);

  c->net->stop();
  b->net->stop();
  a->net->stop();
}

TEST(SocketTransportTest, DeliveryBufferRecyclesAndWritevCoalesces) {
  auto listener = bind_loopback();
  SocketNetworkConfig config;
  config.cluster_size = 2;
  config.peers.resize(2);
  config.peers[0].port = listener.port;

  auto a = make_node(config, 0, listener.fd);
  auto b = make_node(config, 1);

  constexpr int kFrames = 500;
  for (int i = 0; i < kFrames; ++i) {
    b->endpoint->send(0, payload_of("frame-" + std::to_string(i)));
  }
  ASSERT_TRUE(eventually([&] { return a->count() >= kFrames; }));

  // Inbound: the per-connection delivery buffer is recycled, so allocs
  // plateau at warm-up while reuses track the frame count.
  const auto in = a->net->link_stats(0, 1);
  EXPECT_EQ(in.frames_in, static_cast<std::uint64_t>(kFrames));
  EXPECT_EQ(in.delivery_allocs + in.delivery_reuses, in.frames_in);
  EXPECT_GT(in.delivery_reuses, in.delivery_allocs);
  EXPECT_EQ(in.decode_errors, 0u);

  // Outbound: frames queued in one burst leave in far fewer writev calls
  // (end-of-round coalescing), never dropped.
  const auto out = b->net->link_stats(1, 0);
  EXPECT_GE(out.frames_out, static_cast<std::uint64_t>(kFrames));
  EXPECT_LT(out.writev_calls, out.frames_out / 2);
  EXPECT_EQ(out.frames_dropped, 0u);

  b->net->stop();
  a->net->stop();
}

// --- Timers ------------------------------------------------------------------

TEST(SocketTransportTest, TimersFireInOrderAndCancel) {
  SocketNetworkConfig config;
  config.cluster_size = 1;
  config.peers.resize(1);  // dial-only id with no peers: pure timer loop

  auto node = make_node(config, 0);
  std::mutex mutex;
  std::vector<int> fired;
  std::atomic<bool> armed{false};

  // arm_timer has a same-thread contract, so arm from inside the loop.
  node->net->post(0, [&] {
    const TimePoint now = node->net->now_ticks();
    node->net->arm_timer(0, now + 20'000, [&] {
      std::lock_guard<std::mutex> lk(mutex);
      fired.push_back(2);
    });
    node->net->arm_timer(0, now + 5'000, [&] {
      std::lock_guard<std::mutex> lk(mutex);
      fired.push_back(1);
    });
    auto key = node->net->arm_timer(0, now + 10'000, [&] {
      std::lock_guard<std::mutex> lk(mutex);
      fired.push_back(99);
    });
    node->net->cancel_timer(0, key);
    armed.store(true);
  });

  ASSERT_TRUE(eventually([&] {
    std::lock_guard<std::mutex> lk(mutex);
    return armed.load() && fired.size() >= 2;
  }));
  std::lock_guard<std::mutex> lk(mutex);
  EXPECT_EQ(fired, (std::vector<int>{1, 2}));  // order; 99 cancelled
  EXPECT_GE(node->net->timers_fired(), 2u);
  node->net->stop();
}

// --- Connection lifecycle ----------------------------------------------------

TEST(SocketTransportTest, DialerReconnectsAfterPeerRestart) {
  auto listener = bind_loopback();
  SocketNetworkConfig config;
  config.cluster_size = 2;
  config.peers.resize(2);
  config.peers[0].port = listener.port;
  // Fast retries so the restart window is short.
  config.link.backoff.initial_us = 5'000;
  config.link.backoff.max_us = 50'000;

  auto b = make_node(config, 1);  // dialer up first: backoff until A binds
  {
    auto a = make_node(config, 0, listener.fd);
    b->endpoint->send(0, payload_of("first"));
    ASSERT_TRUE(eventually([&] { return a->count() >= 1; }));
    a->net->stop();  // peer restarts: every socket closes
  }

  // The dialer's config still points at the original port; the restarted
  // "process" binds it itself (SO_REUSEADDR — loopback rebinds of a
  // closed listener are immediate).
  auto a2 = make_node(config, 0);

  ASSERT_TRUE(eventually([&] {
    b->endpoint->send(0, payload_of("after-restart"));
    return a2->count() >= 1;
  }));
  // The dialer saw the break and re-established the same link.
  EXPECT_GE(b->net->link_stats(1, 0).reconnects, 1u);
  EXPECT_GE(b->net->link_stats(1, 0).connects_established, 2u);

  b->net->stop();
  a2->net->stop();
}

TEST(SocketTransportTest, SilentPeerTripsRxExpiry) {
  // id 0's "listener" is a raw socket that accepts and never says
  // anything: the dialer establishes, sends its handshake, then rx
  // silence must trip the heartbeat timeout — peer_downs counts it and
  // the dialer goes back to retrying.
  auto silent = bind_loopback();
  SocketNetworkConfig config;
  config.cluster_size = 2;
  config.peers.resize(2);
  config.peers[0].port = silent.port;
  config.link.heartbeat_interval_us = 20'000;
  config.link.heartbeat_timeout_us = 80'000;
  config.link.backoff.initial_us = 10'000;

  auto b = make_node(config, 1);
  ASSERT_TRUE(eventually([&] {
    return b->net->link_stats(1, 0).peer_downs >= 1;
  }));
  // Outbound heartbeats were attempted while the link looked up.
  EXPECT_GE(b->net->link_stats(1, 0).heartbeats_out, 1u);
  b->net->stop();
  ::close(silent.fd);
}

TEST(SocketTransportTest, GarbageHandshakeIsRejected) {
  auto listener = bind_loopback();
  SocketNetworkConfig config;
  config.cluster_size = 2;
  config.peers.resize(2);
  config.peers[0].port = listener.port;
  auto a = make_node(config, 0, listener.fd);

  // A raw client that frames a garbage (non-handshake) first payload:
  // the acceptor must reject it and close, never deliver it.
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(listener.port);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  FrameWriter writer;
  auto frame = *writer.frame(Bytes{0xde, 0xad, 0xbe, 0xef, 0x00, 0x01});
  ASSERT_EQ(::send(fd, frame.data(), frame.size(), 0),
            static_cast<ssize_t>(frame.size()));

  ASSERT_TRUE(eventually([&] {
    return a->net->stats().handshake_rejects >= 1;
  }));
  EXPECT_EQ(a->count(), 0u);
  ::close(fd);
  a->net->stop();
}

// --- Full SMR over sockets ---------------------------------------------------

TEST(SocketTransportTest, SmrClusterCommitsOverRealSockets) {
  // Four SocketSmrServers and one SocketSmrClient inside this process,
  // each with its OWN SocketNetwork — all consensus and client traffic
  // crosses loopback TCP, exactly the smr_server/smr_client topology
  // minus the process boundary (bench E15 and CI's multiprocess smoke
  // cover the forked version).
  constexpr std::uint32_t kN = 4;
  constexpr std::uint64_t kOps = 40;

  runtime::SocketClusterConfig config;
  config.cfg = consensus::QuorumConfig::create(kN, 1, 1);
  config.num_clients = 2;
  config.smr.pipeline_depth = 4;
  config.smr.max_batch = 4;
  config.peers.resize(kN + config.num_clients);
  std::vector<BoundListener> listeners;
  for (std::uint32_t id = 0; id < kN; ++id) {
    listeners.push_back(bind_loopback());
    config.peers[id].port = listeners[id].port;
  }

  std::vector<std::unique_ptr<runtime::SocketSmrServer>> servers;
  for (std::uint32_t id = 0; id < kN; ++id) {
    runtime::SocketClusterConfig own = config;
    own.peers[id].adopted_listen_fd = listeners[id].fd;
    servers.push_back(
        std::make_unique<runtime::SocketSmrServer>(std::move(own), id));
    servers.back()->start();
  }

  runtime::SocketClientOptions options;
  options.first_client_id = kN;
  options.sessions = 2;
  options.max_in_flight = 4;
  runtime::SocketSmrClient client(config, options);
  client.start();
  for (std::uint64_t i = 0; i < kOps; ++i) {
    auto& session = client.session(static_cast<std::uint32_t>(i % 2));
    if (i % 2 == 0) {
      session.put("key-" + std::to_string(i % 8), "v" + std::to_string(i));
    } else {
      session.get("key-" + std::to_string(i % 8));
    }
  }
  ASSERT_TRUE(eventually([&] { return client.completed() >= kOps; }, 30000ms));
  EXPECT_EQ(client.deadline_timeouts(), 0u);

  // Every correct replica applies every command; the transport never
  // dropped or misframed anything along the way.
  ASSERT_TRUE(eventually([&] {
    for (const auto& server : servers) {
      if (server->applied_commands() < kOps) return false;
    }
    return true;
  }));
  for (const auto& server : servers) {
    const auto stats = server->socket_stats();
    EXPECT_EQ(stats.decode_errors, 0u);
    EXPECT_EQ(stats.frames_dropped, 0u);
    EXPECT_EQ(stats.handshake_rejects, 0u);
  }
  client.stop();
  for (auto& server : servers) server->stop();
}

}  // namespace
}  // namespace fastbft::net
