#include <gtest/gtest.h>

#include "crypto/hmac.hpp"
#include "crypto/sha256.hpp"
#include "crypto/signer.hpp"

namespace fastbft::crypto {
namespace {

std::string digest_hex(const Digest& d) {
  return to_hex(Bytes(d.begin(), d.end()));
}

// --- SHA-256: FIPS 180-4 / NIST CAVP vectors --------------------------------

TEST(Sha256, EmptyString) {
  EXPECT_EQ(digest_hex(sha256({})),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(digest_hex(sha256(to_bytes("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(
      digest_hex(sha256(to_bytes(
          "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Bytes data(1'000'000, static_cast<std::uint8_t>('a'));
  EXPECT_EQ(digest_hex(sha256(data)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  Bytes data;
  for (int i = 0; i < 1000; ++i) data.push_back(static_cast<std::uint8_t>(i));
  Sha256 h;
  // Uneven chunking crosses block boundaries in awkward places.
  std::size_t offsets[] = {0, 1, 7, 64, 65, 200, 511, 999, 1000};
  for (std::size_t i = 0; i + 1 < std::size(offsets); ++i) {
    h.update(data.data() + offsets[i], offsets[i + 1] - offsets[i]);
  }
  EXPECT_EQ(h.finalize(), sha256(data));
}

TEST(Sha256, ExactBlockBoundaryLengths) {
  // Lengths around the 64-byte block and the 56-byte padding threshold.
  for (std::size_t len : {55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u, 128u}) {
    Bytes data(len, 0xab);
    Sha256 h;
    h.update(data);
    EXPECT_EQ(h.finalize(), sha256(data)) << "len=" << len;
  }
}

TEST(Sha256, ResetAllowsReuse) {
  Sha256 h;
  h.update(to_bytes("garbage"));
  (void)h.finalize();
  h.reset();
  h.update(to_bytes("abc"));
  EXPECT_EQ(digest_hex(h.finalize()),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

// --- HMAC-SHA-256: RFC 4231 test vectors ------------------------------------

TEST(Hmac, Rfc4231Case1) {
  Bytes key(20, 0x0b);
  EXPECT_EQ(digest_hex(hmac_sha256(key, to_bytes("Hi There"))),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2) {
  EXPECT_EQ(
      digest_hex(hmac_sha256(to_bytes("Jefe"),
                             to_bytes("what do ya want for nothing?"))),
      "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, Rfc4231Case3) {
  Bytes key(20, 0xaa);
  Bytes data(50, 0xdd);
  EXPECT_EQ(digest_hex(hmac_sha256(key, data)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(Hmac, Rfc4231Case6LongKey) {
  Bytes key(131, 0xaa);
  EXPECT_EQ(digest_hex(hmac_sha256(
                key, to_bytes("Test Using Larger Than Block-Size Key - "
                              "Hash Key First"))),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

// --- Signer / Verifier -------------------------------------------------------

class SignerTest : public ::testing::Test {
 protected:
  std::shared_ptr<const KeyStore> keys_ =
      std::make_shared<const KeyStore>(123, 7);
  Verifier verifier_{keys_};
};

TEST_F(SignerTest, SignVerifyRoundtrip) {
  Signer signer(keys_, 3);
  Bytes msg = to_bytes("propose value 42 in view 9");
  Signature sig = signer.sign("propose", msg);
  EXPECT_TRUE(verifier_.verify(3, "propose", msg, sig));
}

TEST_F(SignerTest, WrongSignerRejected) {
  Signer signer(keys_, 3);
  Signature sig = signer.sign("propose", to_bytes("m"));
  EXPECT_FALSE(verifier_.verify(2, "propose", to_bytes("m"), sig));
}

TEST_F(SignerTest, WrongDomainRejected) {
  Signer signer(keys_, 3);
  Signature sig = signer.sign("propose", to_bytes("m"));
  EXPECT_FALSE(verifier_.verify(3, "ack", to_bytes("m"), sig));
}

TEST_F(SignerTest, WrongMessageRejected) {
  Signer signer(keys_, 3);
  Signature sig = signer.sign("propose", to_bytes("m"));
  EXPECT_FALSE(verifier_.verify(3, "propose", to_bytes("m2"), sig));
}

TEST_F(SignerTest, TamperedSignatureRejected) {
  Signer signer(keys_, 3);
  Bytes msg = to_bytes("m");
  Signature sig = signer.sign("propose", msg);
  sig.bytes[0] ^= 1;
  EXPECT_FALSE(verifier_.verify(3, "propose", msg, sig));
}

TEST_F(SignerTest, TruncatedSignatureRejected) {
  Signer signer(keys_, 3);
  Bytes msg = to_bytes("m");
  Signature sig = signer.sign("propose", msg);
  sig.bytes.pop_back();
  EXPECT_FALSE(verifier_.verify(3, "propose", msg, sig));
}

TEST_F(SignerTest, OutOfRangeSignerRejected) {
  Signer signer(keys_, 3);
  Signature sig = signer.sign("propose", to_bytes("m"));
  EXPECT_FALSE(verifier_.verify(99, "propose", to_bytes("m"), sig));
}

TEST_F(SignerTest, DistinctProcessesDistinctKeys) {
  KeyStore keys(5, 4);
  for (std::uint32_t i = 0; i < 4; ++i) {
    for (std::uint32_t j = i + 1; j < 4; ++j) {
      EXPECT_FALSE(bytes_equal(keys.secret_of(i), keys.secret_of(j)))
          << i << " vs " << j;
    }
  }
}

TEST_F(SignerTest, DeterministicAcrossKeyStoreInstances) {
  KeyStore a(77, 5), b(77, 5);
  EXPECT_TRUE(bytes_equal(a.secret_of(2), b.secret_of(2)));
  KeyStore c(78, 5);
  EXPECT_FALSE(bytes_equal(a.secret_of(2), c.secret_of(2)));
}

TEST(DeriveKey, LabelAndIndexSeparate) {
  Bytes master = to_bytes("master");
  EXPECT_FALSE(bytes_equal(derive_key(master, "a", 0), derive_key(master, "a", 1)));
  EXPECT_FALSE(bytes_equal(derive_key(master, "a", 0), derive_key(master, "b", 0)));
  EXPECT_TRUE(bytes_equal(derive_key(master, "a", 0), derive_key(master, "a", 0)));
}

}  // namespace
}  // namespace fastbft::crypto
