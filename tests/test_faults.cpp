#include <gtest/gtest.h>

#include <map>

#include "adversary/behaviors.hpp"
#include "smr/smr_node.hpp"

/// Byzantine fault injection through the full stack: equivocating leaders,
/// silent processes, promiscuous ackers, laggards — in all cases agreement
/// must hold and (after GST, with a correct leader) liveness too.

namespace fastbft::adversary {
namespace {

using runtime::Cluster;
using runtime::ClusterOptions;

std::vector<Value> inputs_for(std::uint32_t n) {
  std::vector<Value> inputs;
  for (std::uint32_t i = 0; i < n; ++i) {
    inputs.push_back(Value::of_string("input" + std::to_string(i)));
  }
  return inputs;
}

ClusterOptions options_for(consensus::QuorumConfig cfg, std::uint64_t seed = 1) {
  ClusterOptions options;
  options.cfg = cfg;
  options.net.delta = 100;
  options.net.min_delay = 100;
  options.net.seed = seed;
  return options;
}

TEST(Faults, SilentLeaderIsReplaced) {
  auto cfg = consensus::QuorumConfig::create(4, 1, 1);
  Cluster cluster(options_for(cfg), inputs_for(4));
  cluster.replace_process(0, silent());
  cluster.start();
  ASSERT_TRUE(cluster.run_until_all_correct_decided(500'000));
  EXPECT_TRUE(cluster.agreement());
  auto d = cluster.decision_of(1);
  ASSERT_TRUE(d.has_value());
  EXPECT_GT(d->view, 1u);
}

TEST(Faults, SilentNonLeaderDoesNotSlowFastPath) {
  auto cfg = consensus::QuorumConfig::create(9, 2, 2);
  Cluster cluster(options_for(cfg), inputs_for(9));
  cluster.replace_process(4, silent());
  cluster.replace_process(8, silent());
  cluster.start();
  ASSERT_TRUE(cluster.run_until_all_correct_decided(100'000));
  EXPECT_TRUE(cluster.agreement());
  EXPECT_DOUBLE_EQ(cluster.max_decision_delays(), 2.0);
}

TEST(Faults, EquivocatingLeaderCannotBreakAgreement) {
  // f = t = 1, n = 4: leader 0 proposes A to even ids, B to odd ids.
  // No value can reach the fast quorum of 3 among correct processes alone
  // (2 correct acks for A, 1 for B at most)... except the leader's own
  // acks push one side through — either way agreement must hold.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    auto cfg = consensus::QuorumConfig::create(4, 1, 1);
    Cluster cluster(options_for(cfg, seed), inputs_for(4));
    cluster.replace_process(
        0, equivocating_leader(Value::of_string("A"), Value::of_string("B")));
    cluster.start();
    ASSERT_TRUE(cluster.run_until_all_correct_decided(2'000'000))
        << "seed=" << seed;
    EXPECT_TRUE(cluster.agreement()) << "seed=" << seed;
  }
}

TEST(Faults, EquivocatingLeaderLargerCluster) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    auto cfg = consensus::QuorumConfig::create(9, 2, 2);
    Cluster cluster(options_for(cfg, seed), inputs_for(9));
    cluster.replace_process(
        0, equivocating_leader(Value::of_string("A"), Value::of_string("B")));
    cluster.replace_process(5, promiscuous_acker());
    cluster.start();
    ASSERT_TRUE(cluster.run_until_all_correct_decided(2'000'000))
        << "seed=" << seed;
    EXPECT_TRUE(cluster.agreement()) << "seed=" << seed;
  }
}

TEST(Faults, EquivocationSurvivesIntoViewChangeSafely) {
  // Deterministic lock-step variant: the equivocating leader splits the
  // cluster; whichever value gathers a fast quorum (if any) must be the
  // value selected in the next view.
  auto cfg = consensus::QuorumConfig::create(4, 1, 1);
  Cluster cluster(options_for(cfg), inputs_for(4));
  cluster.replace_process(
      0, equivocating_leader(Value::of_string("A"), Value::of_string("B")));
  cluster.start();
  ASSERT_TRUE(cluster.run_until_all_correct_decided(2'000'000));
  EXPECT_TRUE(cluster.agreement());
  // With even/odd split: p2 acks A; p1, p3 ack B; leader acks both.
  // B can reach 3 acks (p1, p3, p0), A only 2 — decided value, if fast,
  // must be B; after a view change both A and B are possible but all
  // correct processes agree. (Checked by agreement() above; here we also
  // sanity-check decisions are non-empty and from {A, B, inputs}.)
  for (const auto& d : cluster.decisions()) {
    EXPECT_FALSE(d.value.empty());
  }
}

TEST(Faults, PromiscuousAckerAloneIsHarmless) {
  auto cfg = consensus::QuorumConfig::create(4, 1, 1);
  Cluster cluster(options_for(cfg), inputs_for(4));
  cluster.replace_process(2, promiscuous_acker());
  cluster.start();
  ASSERT_TRUE(cluster.run_until_all_correct_decided(500'000));
  EXPECT_TRUE(cluster.agreement());
  EXPECT_DOUBLE_EQ(cluster.max_decision_delays(), 2.0);
}

TEST(Faults, LaggardEventuallyDecides) {
  auto cfg = consensus::QuorumConfig::create(4, 1, 1);
  Cluster cluster(options_for(cfg), inputs_for(4));
  cluster.replace_process(3, laggard(1'000));
  cluster.start();
  // The three punctual processes decide fast...
  ASSERT_TRUE(cluster.run_until_all_correct_decided(100'000));
  EXPECT_TRUE(cluster.agreement());
  // ...and the laggard, although marked faulty for quorum accounting,
  // also reaches the same decision eventually (it runs the honest code).
  cluster.run_until(200'000);
}

TEST(Faults, CrashJustBeforeProposalStillLive) {
  // Leader crashes 1 tick after start: its proposal may be partially out.
  auto cfg = consensus::QuorumConfig::create(9, 2, 2);
  for (TimePoint crash_time : {1, 50, 99, 100, 101, 150}) {
    Cluster cluster(options_for(cfg, static_cast<std::uint64_t>(crash_time)),
                    inputs_for(9));
    cluster.crash_at(0, crash_time);
    cluster.start();
    ASSERT_TRUE(cluster.run_until_all_correct_decided(5'000'000))
        << "crash at " << crash_time;
    EXPECT_TRUE(cluster.agreement()) << "crash at " << crash_time;
  }
}

TEST(Faults, MaxFaultsMixedKinds) {
  // f = 3, t = 1 -> n = 3*3 + 2 - 1 = 10; three faults of different kinds.
  auto cfg = consensus::QuorumConfig::create(10, 3, 1);
  Cluster cluster(options_for(cfg), inputs_for(10));
  cluster.replace_process(2, silent());
  cluster.replace_process(5, promiscuous_acker());
  cluster.crash_at(8, 250);
  cluster.start();
  ASSERT_TRUE(cluster.run_until_all_correct_decided(5'000'000));
  EXPECT_TRUE(cluster.agreement());
}

TEST(FaultSweep, RandomByzantineMixNeverBreaksAgreement) {
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    auto cfg = consensus::QuorumConfig::create(9, 2, 2);
    ClusterOptions options = options_for(cfg, seed);
    options.net.min_delay = 20;
    options.net.gst = 3'000;
    options.net.pre_gst_max_delay = 2'000;
    Cluster cluster(options, inputs_for(9));

    sim::Rng rng(seed * 31337);
    // Two faults, kinds chosen at random.
    ProcessId ids[2] = {static_cast<ProcessId>(rng.next_below(9)), 0};
    do {
      ids[1] = static_cast<ProcessId>(rng.next_below(9));
    } while (ids[1] == ids[0]);
    for (ProcessId id : ids) {
      switch (rng.next_below(4)) {
        case 0: cluster.replace_process(id, silent()); break;
        case 1: cluster.replace_process(id, promiscuous_acker()); break;
        case 2:
          cluster.replace_process(
              id, equivocating_leader(Value::of_string("E1"),
                                      Value::of_string("E2")));
          break;
        default:
          cluster.crash_at(id, static_cast<TimePoint>(rng.next_below(2'000)));
      }
    }
    cluster.start();
    ASSERT_TRUE(cluster.run_until_all_correct_decided(30'000'000))
        << "seed=" << seed;
    EXPECT_TRUE(cluster.agreement()) << "seed=" << seed;
  }
}

// --- Pipelined SMR under faults ---------------------------------------------------

TEST(Faults, PipelinedSmrSurvivesSilentInitialLeader) {
  // A silent p0 never proposes. With rotate_leaders + depth 4, p0 leads
  // the view-1 of slots 1, 5, 9, ... — those slots stall until their view
  // change while slots led by p1..p3 decide immediately, so the engine
  // must hold out-of-order decisions (reorder high-water > 0) and the log
  // must still apply strictly in slot order on every correct replica.
  auto cfg = consensus::QuorumConfig::create(4, 1, 1);
  ClusterOptions options = options_for(cfg);

  std::vector<smr::SmrNode*> nodes(4, nullptr);
  smr::SmrOptions smr_options;
  smr_options.max_batch = 2;
  smr_options.target_commands = 8;
  smr_options.pipeline_depth = 4;
  smr_options.rotate_leaders = true;
  std::map<ProcessId, std::vector<Slot>> applied_slots;
  options.node_factory = [&](const runtime::ProcessContext& ctx,
                             const runtime::NodeOptions&,
                             runtime::Node::DecideCallback) {
    auto node = std::make_unique<smr::SmrNode>(
        ctx, smr_options,
        [&applied_slots](ProcessId pid, GroupId, Slot slot,
                         const std::vector<smr::Command>&) {
          applied_slots[pid].push_back(slot);
        });
    nodes[ctx.id] = node.get();
    return node;
  };

  Cluster cluster(options, inputs_for(4));
  cluster.replace_process(0, silent());
  cluster.start();
  cluster.scheduler().schedule_at(0, [&] {
    for (int i = 1; i <= 8; ++i) {
      nodes[1]->submit(smr::Command::put("k" + std::to_string(i), "v", 6,
                                         static_cast<std::uint64_t>(i)));
    }
  });
  cluster.run_until(5'000'000);

  for (ProcessId id = 1; id < 4; ++id) {
    ASSERT_NE(nodes[id], nullptr);
    EXPECT_EQ(nodes[id]->applied_commands(), 8u) << "p" << id;
    EXPECT_EQ(nodes[id]->store().state_digest(),
              nodes[1]->store().state_digest())
        << "p" << id;
    EXPECT_GE(nodes[id]->engine().reorder_high_water(), 1u)
        << "slots past the silent leader's must not have waited for it";
    const auto& slots = applied_slots[id];
    for (std::size_t i = 0; i < slots.size(); ++i) {
      ASSERT_EQ(slots[i], static_cast<Slot>(i + 1))
          << "p" << id << " applied out of slot order";
    }
  }
}

}  // namespace
}  // namespace fastbft::adversary
