#include <gtest/gtest.h>

#include <fstream>
#include <string>
#include <vector>

#include "chaos/harness.hpp"
#include "chaos/schedule.hpp"
#include "smr/service.hpp"

/// The chaos stack in tier-1: the linearizability checker against
/// hand-built histories whose verdicts are known, the schedule codec, the
/// determinism contract, a deterministic multi-config smoke over the full
/// harness, the committed injected-bug regression artifact, and the
/// legacy adversary behaviors (silent / laggard / lying replica) re-run
/// on the pipelined engine path (depth > 1, rotate_leaders on).

namespace fastbft::chaos {
namespace {

using namespace std::chrono_literals;

// --- Checker unit suite -----------------------------------------------------

/// Builders for synthetic OpRecords. All definite ops complete with
/// Status::Ok; the reply's ExecResult is what the checker audits.
OpRecord base_op(std::uint64_t client, std::uint64_t seq, smr::OpKind kind,
                 std::string key, TimePoint invoked, TimePoint returned) {
  OpRecord op;
  op.client_id = client;
  op.sequence = seq;
  op.kind = kind;
  op.key = std::move(key);
  op.invoked = invoked;
  op.returned = returned;
  op.completed = true;
  op.reply.client_id = client;
  op.reply.sequence = seq;
  op.reply.op = kind;
  return op;
}

OpRecord put(std::uint64_t client, std::uint64_t seq, const std::string& key,
             std::string value, TimePoint t0, TimePoint t1,
             bool found_before) {
  OpRecord op = base_op(client, seq, smr::OpKind::Put, key, t0, t1);
  op.value = std::move(value);
  op.reply.result.ok = true;
  op.reply.result.found = found_before;
  return op;
}

OpRecord get(std::uint64_t client, std::uint64_t seq, const std::string& key,
             TimePoint t0, TimePoint t1, bool found, std::string value = {}) {
  OpRecord op = base_op(client, seq, smr::OpKind::Get, key, t0, t1);
  op.reply.result.ok = true;
  op.reply.result.found = found;
  op.reply.result.value = std::move(value);
  return op;
}

OpRecord del(std::uint64_t client, std::uint64_t seq, const std::string& key,
             TimePoint t0, TimePoint t1, bool found_before) {
  OpRecord op = base_op(client, seq, smr::OpKind::Del, key, t0, t1);
  op.reply.result.ok = true;
  op.reply.result.found = found_before;
  return op;
}

OpRecord cas(std::uint64_t client, std::uint64_t seq, const std::string& key,
             std::string expected, std::string value, TimePoint t0,
             TimePoint t1, bool won, bool found_before) {
  OpRecord op = base_op(client, seq, smr::OpKind::Cas, key, t0, t1);
  op.expected = std::move(expected);
  op.value = std::move(value);
  op.reply.result.ok = won;
  op.reply.result.found = found_before;
  return op;
}

/// A write whose fate the run never learned (deadline expired).
OpRecord timed_out_put(std::uint64_t client, std::uint64_t seq,
                       const std::string& key, std::string value,
                       TimePoint t0, TimePoint t1) {
  OpRecord op = base_op(client, seq, smr::OpKind::Put, key, t0, t1);
  op.value = std::move(value);
  op.reply.status = smr::Reply::Status::Timeout;
  return op;
}

CheckResult check(const std::vector<OpRecord>& history) {
  return LinearizabilityChecker().check(history);
}

TEST(Checker, KnownGoodSequentialHistoryAccepted) {
  std::vector<OpRecord> h;
  h.push_back(put(10, 1, "k", "a", 0, 10, /*found_before=*/false));
  h.push_back(get(10, 2, "k", 20, 30, true, "a"));
  h.push_back(cas(10, 3, "k", "a", "b", 40, 50, /*won=*/true, true));
  h.push_back(get(11, 1, "k", 60, 70, true, "b"));
  h.push_back(del(11, 2, "k", 80, 90, true));
  h.push_back(get(10, 4, "k", 100, 110, false));
  CheckResult r = check(h);
  EXPECT_TRUE(r.linearizable) << r.violation;
  EXPECT_TRUE(r.conclusive);
  EXPECT_EQ(r.keys_checked, 1u);
}

TEST(Checker, ConcurrentWritesAcceptedEitherOrder) {
  // Two overlapping puts; the later read may see either winner, as long as
  // the found-before echoes are consistent with the chosen order. Here the
  // echoes pin "a then b" and the read sees b...
  std::vector<OpRecord> h;
  h.push_back(put(10, 1, "k", "a", 0, 50, false));
  h.push_back(put(11, 1, "k", "b", 10, 40, true));
  h.push_back(get(10, 2, "k", 60, 70, true, "b"));
  CheckResult r = check(h);
  EXPECT_TRUE(r.linearizable) << r.violation;
  EXPECT_TRUE(r.conclusive);

  // ...and the mirrored echoes pin "b then a" with the read seeing a.
  std::vector<OpRecord> m;
  m.push_back(put(10, 1, "k", "a", 0, 50, true));
  m.push_back(put(11, 1, "k", "b", 10, 40, false));
  m.push_back(get(10, 2, "k", 60, 70, true, "a"));
  CheckResult rm = check(m);
  EXPECT_TRUE(rm.linearizable) << rm.violation;
  EXPECT_TRUE(rm.conclusive);
}

TEST(Checker, StaleReadRejected) {
  // The read starts strictly after put(b) returned, yet observes a.
  std::vector<OpRecord> h;
  h.push_back(put(10, 1, "k", "a", 0, 10, false));
  h.push_back(put(10, 2, "k", "b", 20, 30, true));
  h.push_back(get(11, 1, "k", 40, 50, true, "a"));
  CheckResult r = check(h);
  EXPECT_FALSE(r.linearizable);
  EXPECT_TRUE(r.conclusive);
  EXPECT_EQ(r.violating_key, "k");
}

TEST(Checker, LostUpdateRejected) {
  // An acknowledged cas(a -> b) whose effect never becomes visible.
  std::vector<OpRecord> h;
  h.push_back(put(10, 1, "k", "a", 0, 10, false));
  h.push_back(cas(10, 2, "k", "a", "b", 20, 30, /*won=*/true, true));
  h.push_back(get(11, 1, "k", 40, 50, true, "a"));
  CheckResult r = check(h);
  EXPECT_FALSE(r.linearizable);
  EXPECT_TRUE(r.conclusive);
}

TEST(Checker, DuplicateApplyRejected) {
  // A del acknowledged once but (observably) applied twice: the put of c
  // lands strictly between the del's return and the read, yet the read
  // finds nothing — only a replayed del explains it, and at-most-once
  // forbids that.
  std::vector<OpRecord> h;
  h.push_back(put(10, 1, "k", "a", 0, 10, false));
  h.push_back(del(10, 2, "k", 20, 30, true));
  h.push_back(put(11, 1, "k", "c", 40, 50, false));
  h.push_back(get(11, 2, "k", 60, 70, false));
  CheckResult r = check(h);
  EXPECT_FALSE(r.linearizable);
  EXPECT_TRUE(r.conclusive);
}

TEST(Checker, CasBothWinnersRejected) {
  // Two concurrent cas ops race for the same expected value and BOTH
  // report success — impossible under any single order.
  std::vector<OpRecord> h;
  h.push_back(put(10, 1, "k", "a", 0, 10, false));
  h.push_back(cas(10, 2, "k", "a", "b", 20, 60, /*won=*/true, true));
  h.push_back(cas(11, 1, "k", "a", "c", 20, 60, /*won=*/true, true));
  CheckResult r = check(h);
  EXPECT_FALSE(r.linearizable);
  EXPECT_TRUE(r.conclusive);
}

TEST(Checker, AmbiguousTimeoutAcceptedApplied) {
  // The timed-out put may have executed: a later read seeing its value
  // is fine...
  std::vector<OpRecord> h;
  h.push_back(put(10, 1, "k", "a", 0, 10, false));
  h.push_back(timed_out_put(10, 2, "k", "b", 20, 34'000));
  h.push_back(get(11, 1, "k", 40'000, 40'010, true, "b"));
  CheckResult r = check(h);
  EXPECT_TRUE(r.linearizable) << r.violation;
}

TEST(Checker, AmbiguousTimeoutAcceptedNeverApplied) {
  // ...and so is a later read never seeing it at all.
  std::vector<OpRecord> h;
  h.push_back(put(10, 1, "k", "a", 0, 10, false));
  h.push_back(timed_out_put(10, 2, "k", "b", 20, 34'000));
  h.push_back(get(11, 1, "k", 40'000, 40'010, true, "a"));
  CheckResult r = check(h);
  EXPECT_TRUE(r.linearizable) << r.violation;
}

TEST(Checker, AmbiguousTimeoutMayApplyArbitrarilyLate) {
  // The timed-out write is even allowed to land AFTER ops that returned
  // long past its own response (at-most-once, not exactly-never).
  std::vector<OpRecord> h;
  h.push_back(put(10, 1, "k", "a", 0, 10, false));
  h.push_back(timed_out_put(10, 2, "k", "b", 20, 34'000));
  h.push_back(get(11, 1, "k", 40'000, 40'010, true, "a"));
  h.push_back(get(11, 2, "k", 50'000, 50'010, true, "b"));
  CheckResult r = check(h);
  EXPECT_TRUE(r.linearizable) << r.violation;
}

TEST(Checker, ExhaustedBudgetReportsInconclusiveNotLinearizable) {
  // A violating history under a starved budget must refuse to conclude
  // rather than acquit.
  std::vector<OpRecord> h;
  h.push_back(put(10, 1, "k", "a", 0, 10, false));
  h.push_back(put(10, 2, "k", "b", 20, 30, true));
  h.push_back(get(11, 1, "k", 40, 50, true, "a"));
  CheckerOptions tiny;
  tiny.max_states_per_key = 1;
  CheckResult r = LinearizabilityChecker(tiny).check(h);
  EXPECT_FALSE(r.conclusive);
  EXPECT_TRUE(r.linearizable) << "an inconclusive search must not convict";
}

// --- Schedule codec ---------------------------------------------------------

TEST(Schedule, HexRoundTripPreservesEverySchedule) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    ScenarioOptions options;
    options.shards = 1 + seed % 4;
    options.adaptive = seed % 2 == 0;
    Schedule s = generate_schedule(seed, options);
    auto back = Schedule::from_hex(s.to_hex());
    ASSERT_TRUE(back.has_value()) << "seed " << seed;
    EXPECT_EQ(*back, s) << "seed " << seed;
  }
}

TEST(Schedule, FromHexRejectsGarbage) {
  EXPECT_FALSE(Schedule::from_hex("").has_value());
  EXPECT_FALSE(Schedule::from_hex("zz").has_value());
  EXPECT_FALSE(Schedule::from_hex("deadbeef").has_value());
  Schedule s = generate_schedule(3);
  std::string hex = s.to_hex();
  // Truncation and trailing junk both fail (decode checks at_end).
  EXPECT_FALSE(Schedule::from_hex(hex.substr(0, hex.size() - 2)).has_value());
  EXPECT_FALSE(Schedule::from_hex(hex + "00").has_value());
  // A bumped version byte is not silently reinterpreted.
  std::string wrong_version = hex;
  wrong_version[1] = 'f';
  EXPECT_FALSE(Schedule::from_hex(wrong_version).has_value());
}

// --- Determinism contract ---------------------------------------------------

TEST(ChaosHarness, IdenticalSchedulesProduceIdenticalRuns) {
  Schedule s = generate_schedule(7);
  s.ops_per_session = 12;
  Harness harness;
  RunResult a = harness.run(s);
  RunResult b = harness.run(s);
  EXPECT_EQ(a.history_digest, b.history_digest);
  EXPECT_EQ(a.envelope_digest, b.envelope_digest);
  EXPECT_EQ(a.envelopes, b.envelopes);
  EXPECT_EQ(a.envelopes_dropped, b.envelopes_dropped);
  EXPECT_EQ(a.check.linearizable, b.check.linearizable);
  EXPECT_EQ(a.failed(), b.failed());
}

// --- Shard-aware smoke (fixed seeds, deterministic) --------------------------
//
// Seeds were picked to pass under all four configs. Seed 2 is deliberately
// absent: under adaptive pipelining it drives the cluster into a known
// catch-up liveness gap (one correct replica ahead, two laggards, one crash —
// the laggards can never assemble f+1 distinct claimants for the decided
// slots). See docs/CHAOS.md "Known gaps" and the ROADMAP state-transfer item.

class ChaosSmoke
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::uint32_t,
                                                 bool>> {};

INSTANTIATE_TEST_SUITE_P(
    SeedsByConfig, ChaosSmoke,
    ::testing::Combine(::testing::Values(3u, 5u, 11u),
                       ::testing::Values(1u, 4u),
                       ::testing::Bool()),
    [](const auto& info) {
      return "Seed" + std::to_string(std::get<0>(info.param)) + "Shards" +
             std::to_string(std::get<1>(info.param)) +
             (std::get<2>(info.param) ? "Adaptive" : "Fixed");
    });

TEST_P(ChaosSmoke, RandomizedFaultScheduleStaysLinearizable) {
  auto [seed, shards, adaptive] = GetParam();
  ScenarioOptions options;
  options.shards = shards;
  options.adaptive = adaptive;
  Schedule schedule = generate_schedule(seed, options);
  RunResult result = Harness().run(schedule);
  EXPECT_FALSE(result.failed())
      << schedule.to_string() << result.check.violation;
  EXPECT_TRUE(result.stores_converged) << schedule.to_string();
  EXPECT_GT(result.ops_completed, 0u);
}

// --- Injected-bug regression artifact ----------------------------------------

std::string read_artifact(const std::string& name) {
  std::ifstream in(std::string(FASTBFT_TEST_DATA_DIR) + "/" + name);
  std::string hex;
  in >> hex;
  return hex;
}

TEST(ChaosRegression, CommittedUnsafeQuorumScheduleStillFails) {
  // Minimized by the chaos_fuzz shrinker from seed 1 with --inject-bug:
  // one session, four ops, one lying replica, and the unsafe
  // first-reply-quorum hook. Replays bit-for-bit; must keep failing — it
  // is the proof the checker catches a real safety violation end to end.
  std::string hex = read_artifact("chaos_regression_unsafe_quorum.hex");
  ASSERT_FALSE(hex.empty()) << "missing committed artifact";
  auto schedule = Schedule::from_hex(hex);
  ASSERT_TRUE(schedule.has_value()) << "artifact does not decode";
  ASSERT_TRUE(schedule->unsafe_first_reply_quorum);
  ASSERT_NE(schedule->lying_mask, 0u);

  Harness harness;
  RunResult bad = harness.run(*schedule);
  EXPECT_TRUE(bad.failed());
  EXPECT_FALSE(bad.check.linearizable);
  EXPECT_TRUE(bad.check.conclusive);

  // The shrinker keeps it failing (it is already minimal, so this is
  // cheap) — guards the shrinker's "must still fail" invariant.
  auto minimized = harness.shrink(*schedule);
  EXPECT_TRUE(harness.run(minimized.schedule).failed());

  // Restoring the safe f + 1 reply quorum heals the very same scenario:
  // the bug is the hook, not the harness.
  Schedule fixed = *schedule;
  fixed.unsafe_first_reply_quorum = false;
  RunResult good = harness.run(fixed);
  EXPECT_FALSE(good.failed()) << good.check.violation;
}

// --- Gateway blacklisting (permanently-Byzantine gateway) --------------------

TEST(GatewayBlacklist, ByzantineGatewayIsDemotedNotRetriedForever) {
  // Replica 0 serves consensus honestly but silently drops every client
  // forward. Session 0's first gateway IS replica 0, and the open-loop
  // burst below puts several requests in flight there at once — each
  // times out, each is a strike, and the gateway must cross the strike
  // limit and be demoted for the rest of the session. Before the
  // blacklist fix the session retried it once per rotation forever.
  auto config = smr::ServiceConfig{}
                    .with_cluster(4, 1, 1)
                    .with_sessions(1)
                    .with_pipeline_depth(2)
                    .with_seed(3);
  config.with_tune_replica([](ProcessId id, smr::SmrOptions& options) {
    if (id == 0) options.byzantine.drop_forwards = true;
  });
  auto service = smr::make_sim_service(config);
  service->start();
  smr::ClientSession& session = service->session(0);

  std::vector<smr::Future<smr::Reply>> futures;
  for (int i = 0; i < 6; ++i) {
    futures.push_back(
        session.put("key" + std::to_string(i), "v" + std::to_string(i)));
  }
  for (auto& future : futures) {
    ASSERT_TRUE(service->await(future, 60'000ms)) << "request wedged";
    EXPECT_TRUE(future.value().ok());
  }
  EXPECT_GE(session.gateway_demotions(), 1u);
  EXPECT_TRUE(session.is_gateway_blacklisted(0));

  // Demoted means skipped: later traffic completes without touching the
  // bad gateway again (no further failover churn required).
  std::uint64_t failovers_before = session.failovers();
  auto after = session.put("late", "value");
  ASSERT_TRUE(service->await(after, 60'000ms));
  EXPECT_TRUE(after.value().ok());
  EXPECT_EQ(session.failovers(), failovers_before);
}

// --- Legacy adversary behaviors on the pipelined engine path -----------------
//
// The behaviors tests/test_faults.cpp runs through the raw single-shot
// runtime, re-expressed as chaos schedules against the FULL pipelined SMR
// stack: depth > 1, rotate_leaders on. Silent is modeled as a fail-stop
// at t=0 (a replica whose every message is lost is indistinguishable from
// a crashed one to the rest of the cluster), the laggard as heavy
// symmetric link delay, the liar as a reply-forging replica defeated by
// the f + 1 reply quorum.

Schedule pipelined_base(std::uint64_t seed) {
  Schedule s;
  s.seed = seed;
  s.n = 4;
  s.f = 1;
  s.t = 1;
  s.sessions = 2;
  s.ops_per_session = 15;
  s.key_space = 4;
  s.pipeline_depth = 3;
  s.rotate_leaders = true;
  return s;
}

TEST(PipelinedAdversary, SilentInitialLeaderPipelineStaysLive) {
  Schedule s = pipelined_base(21);
  FaultEvent crash;
  crash.kind = FaultEvent::Kind::Crash;
  crash.at = 1;
  crash.a = 0;  // the first slot's initial leader
  s.faults.push_back(crash);
  RunResult r = Harness().run(s);
  EXPECT_FALSE(r.failed()) << r.check.violation;
  // mget records one OpRecord per sub-key, so the record count can exceed
  // sessions * ops_per_session; it can never be below it.
  EXPECT_GE(r.ops_completed + r.ops_timed_out, 30u);
  EXPECT_GT(r.ops_completed, 0u);
}

TEST(PipelinedAdversary, LaggardReplicaPipelineStaysLinearizable) {
  Schedule s = pipelined_base(22);
  for (ProcessId peer = 0; peer < 4; ++peer) {
    if (peer == 3) continue;
    for (bool outgoing : {false, true}) {
      FaultEvent lag;
      lag.kind = FaultEvent::Kind::LinkFault;
      lag.at = 1;
      lag.a = outgoing ? 3 : peer;
      lag.b = outgoing ? peer : 3;
      lag.fault.extra_min = 900;
      lag.fault.extra_max = 900;
      s.faults.push_back(lag);
    }
  }
  RunResult r = Harness().run(s);
  EXPECT_FALSE(r.failed()) << r.check.violation;
  EXPECT_TRUE(r.stores_converged) << "laggard never caught up";
}

TEST(PipelinedAdversary, LyingReplicaDefeatedByReplyQuorum) {
  Schedule s = pipelined_base(23);
  s.lying_mask = 1u << 2;
  RunResult r = Harness().run(s);
  EXPECT_FALSE(r.failed()) << r.check.violation;
  EXPECT_TRUE(r.check.linearizable);
  EXPECT_TRUE(r.check.conclusive);
}

}  // namespace
}  // namespace fastbft::chaos
