#include <gtest/gtest.h>

#include "common/bytes.hpp"
#include "common/codec.hpp"
#include "common/logging.hpp"
#include "common/value.hpp"
#include "sim/scheduler.hpp"

namespace fastbft {
namespace {

// --- bytes -------------------------------------------------------------------

TEST(Bytes, HexRoundtrip) {
  Bytes data = {0x00, 0x01, 0xab, 0xff};
  EXPECT_EQ(to_hex(data), "0001abff");
  EXPECT_EQ(from_hex("0001abff"), data);
  EXPECT_EQ(from_hex("0001ABFF"), data);
}

TEST(Bytes, FromHexRejectsMalformed) {
  EXPECT_TRUE(from_hex("abc").empty());   // odd length
  EXPECT_TRUE(from_hex("zz").empty());    // non-hex
  EXPECT_TRUE(from_hex("").empty());
}

TEST(Bytes, HexPrefixTruncates) {
  Bytes data(10, 0xaa);
  EXPECT_EQ(to_hex_prefix(data, 3), "aaaaaa..");
  EXPECT_EQ(to_hex_prefix(data, 10), std::string(20, 'a'));
}

TEST(Bytes, Equality) {
  EXPECT_TRUE(bytes_equal({1, 2, 3}, {1, 2, 3}));
  EXPECT_FALSE(bytes_equal({1, 2, 3}, {1, 2, 4}));
  EXPECT_FALSE(bytes_equal({1, 2}, {1, 2, 3}));
  EXPECT_TRUE(bytes_equal(Bytes{}, Bytes{}));
}

// --- codec -------------------------------------------------------------------

TEST(Codec, ScalarRoundtrip) {
  Encoder enc;
  enc.u8(0xab);
  enc.u16(0x1234);
  enc.u32(0xdeadbeef);
  enc.u64(0x0123456789abcdefULL);
  enc.boolean(true);
  enc.boolean(false);
  Bytes data = std::move(enc).take();

  Decoder dec(data);
  EXPECT_EQ(dec.u8(), 0xab);
  EXPECT_EQ(dec.u16(), 0x1234);
  EXPECT_EQ(dec.u32(), 0xdeadbeefu);
  EXPECT_EQ(dec.u64(), 0x0123456789abcdefULL);
  EXPECT_TRUE(dec.boolean());
  EXPECT_FALSE(dec.boolean());
  EXPECT_TRUE(dec.ok());
  EXPECT_TRUE(dec.at_end());
}

TEST(Codec, BytesAndStrings) {
  Encoder enc;
  enc.bytes({1, 2, 3});
  enc.str("hello");
  enc.bytes(Bytes{});
  Bytes data = std::move(enc).take();

  Decoder dec(data);
  EXPECT_EQ(dec.bytes(), (Bytes{1, 2, 3}));
  EXPECT_EQ(dec.str(), "hello");
  EXPECT_TRUE(dec.bytes().empty());
  EXPECT_TRUE(dec.ok() && dec.at_end());
}

TEST(Codec, TruncationDetected) {
  Encoder enc;
  enc.u64(42);
  Bytes data = std::move(enc).take();
  data.pop_back();

  Decoder dec(data);
  dec.u64();
  EXPECT_FALSE(dec.ok());
}

TEST(Codec, OversizedLengthPrefixDetected) {
  Encoder enc;
  enc.u32(1'000'000);  // claims a million bytes follow
  Bytes data = std::move(enc).take();

  Decoder dec(data);
  Bytes out = dec.bytes();
  EXPECT_FALSE(dec.ok());
  EXPECT_TRUE(out.empty());
}

TEST(Codec, FailuresAreSticky) {
  Bytes empty;
  Decoder dec(empty);
  dec.u8();
  EXPECT_FALSE(dec.ok());
  EXPECT_EQ(dec.u32(), 0u);
  EXPECT_FALSE(dec.ok());
}

TEST(Codec, LittleEndianLayout) {
  Encoder enc;
  enc.u32(0x01020304);
  EXPECT_EQ(enc.data(), (Bytes{0x04, 0x03, 0x02, 0x01}));
}

// --- value -------------------------------------------------------------------

TEST(ValueTest, Construction) {
  EXPECT_TRUE(Value().empty());
  EXPECT_EQ(Value::of_string("abc").size(), 3u);
  EXPECT_EQ(Value::of_u64(7).size(), 8u);
}

TEST(ValueTest, EqualityAndOrdering) {
  EXPECT_EQ(Value::of_string("a"), Value::of_string("a"));
  EXPECT_NE(Value::of_string("a"), Value::of_string("b"));
  EXPECT_LT(Value::of_string("a"), Value::of_string("b"));
}

TEST(ValueTest, CodecRoundtrip) {
  Value v = Value::of_string("payload");
  Bytes data = encode_to_bytes(v);
  auto decoded = decode_from_bytes<Value>(data);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, v);
}

TEST(ValueTest, ToStringPrintable) {
  EXPECT_EQ(Value::of_string("cmd=1").to_string(), "cmd=1");
  Value binary(Bytes{0x00, 0x01});
  EXPECT_EQ(binary.to_string(), "0x0001");
}


// --- logging -------------------------------------------------------------------

TEST(Logging, LevelGating) {
  LogLevel saved = Log::level;
  Log::level = LogLevel::Off;
  // With logging off these must be no-ops (nothing observable to assert
  // beyond "does not crash", which is the point for hot paths).
  log_error("test", "error line");
  log_info("test", "info line");
  log_debug("test", "debug line");
  Log::level = LogLevel::Error;
  log_error("test", "error line");
  log_debug("test", "suppressed");
  Log::level = saved;
}

TEST(Logging, NowHintTracksScheduler) {
  sim::Scheduler sched;
  sched.schedule_at(123, [] {});
  sched.run_to_completion();
  EXPECT_EQ(Log::now_hint, 123);
}
}  // namespace
}  // namespace fastbft
