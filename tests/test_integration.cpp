#include <gtest/gtest.h>

#include "runtime/cluster.hpp"

/// End-to-end executions of the full stack (replica + synchronizer +
/// simulated network) in the common case and across view changes.

namespace fastbft::runtime {
namespace {

std::vector<Value> inputs_for(std::uint32_t n, const std::string& prefix) {
  std::vector<Value> inputs;
  for (std::uint32_t i = 0; i < n; ++i) {
    inputs.push_back(Value::of_string(prefix + std::to_string(i)));
  }
  return inputs;
}

ClusterOptions lockstep_options(consensus::QuorumConfig cfg,
                                std::uint64_t seed = 1) {
  ClusterOptions options;
  options.cfg = cfg;
  options.net.delta = 100;
  options.net.min_delay = 100;  // lock-step: every hop takes exactly delta
  options.net.gst = 0;
  options.net.seed = seed;
  return options;
}

// --- Fast path ----------------------------------------------------------------

TEST(FastPath, FourProcessesDecideInTwoDelays) {
  // f = t = 1 -> n = 4: the headline result (optimal for any partially
  // synchronous Byzantine consensus).
  auto cfg = consensus::QuorumConfig::create(4, 1, 1);
  Cluster cluster(lockstep_options(cfg), inputs_for(4, "in"));
  cluster.start();
  ASSERT_TRUE(cluster.run_until_all_correct_decided(10'000));

  EXPECT_TRUE(cluster.agreement());
  // Leader of view 1 is p0; everyone decides its input.
  for (const auto& d : cluster.decisions()) {
    EXPECT_EQ(d.value, Value::of_string("in0"));
    EXPECT_EQ(d.view, 1u);
    EXPECT_FALSE(d.via_slow_path);
  }
  // Two message delays exactly: propose (delta) + ack (delta).
  EXPECT_DOUBLE_EQ(cluster.max_decision_delays(), 2.0);
}

TEST(FastPath, VanillaFiveFMinusOneSweep) {
  for (std::uint32_t f = 1; f <= 4; ++f) {
    std::uint32_t n = 5 * f - 1;
    auto cfg = consensus::QuorumConfig::vanilla(n, f);
    Cluster cluster(lockstep_options(cfg, f), inputs_for(n, "v"));
    cluster.start();
    ASSERT_TRUE(cluster.run_until_all_correct_decided(10'000)) << "f=" << f;
    EXPECT_TRUE(cluster.agreement()) << "f=" << f;
    EXPECT_DOUBLE_EQ(cluster.max_decision_delays(), 2.0) << "f=" << f;
  }
}

TEST(FastPath, StillTwoStepWithTCrashesAtDelta) {
  // The paper's T-faulty two-step executions: t processes crash at Delta
  // (after behaving correctly in round 1); the rest still decide at 2*Delta.
  auto cfg = consensus::QuorumConfig::create(9, 2, 2);
  Cluster cluster(lockstep_options(cfg), inputs_for(9, "w"));
  cluster.crash_at(4, 100);
  cluster.crash_at(7, 100);
  cluster.start();
  ASSERT_TRUE(cluster.run_until_all_correct_decided(10'000));
  EXPECT_TRUE(cluster.agreement());
  EXPECT_DOUBLE_EQ(cluster.max_decision_delays(), 2.0);
}

TEST(FastPath, GeneralizedTOneKeepsOptimalResilience) {
  // t = 1: n = 3f + 1 (optimal resilience) yet still fast with one fault.
  for (std::uint32_t f = 1; f <= 3; ++f) {
    std::uint32_t n = 3 * f + 1;
    auto cfg = consensus::QuorumConfig::create(n, f, 1);
    Cluster cluster(lockstep_options(cfg, f), inputs_for(n, "g"));
    cluster.crash_at(n - 1, 100);  // one crash at Delta (non-leader)
    cluster.start();
    ASSERT_TRUE(cluster.run_until_all_correct_decided(20'000)) << "f=" << f;
    EXPECT_TRUE(cluster.agreement()) << "f=" << f;
    EXPECT_DOUBLE_EQ(cluster.max_decision_delays(), 2.0) << "f=" << f;
  }
}

TEST(FastPath, ExtendedValidityDecidedValueIsSomeInput) {
  auto cfg = consensus::QuorumConfig::create(4, 1, 1);
  Cluster cluster(lockstep_options(cfg), inputs_for(4, "val"));
  cluster.start();
  ASSERT_TRUE(cluster.run_until_all_correct_decided(10'000));
  EXPECT_TRUE(cluster.decided_value_is_some_input());
}

TEST(FastPath, JitteredDelaysStillDecideFast) {
  auto cfg = consensus::QuorumConfig::create(9, 2, 2);
  ClusterOptions options = lockstep_options(cfg, 99);
  options.net.min_delay = 30;  // jitter in [30, 100]
  Cluster cluster(options, inputs_for(9, "j"));
  cluster.start();
  ASSERT_TRUE(cluster.run_until_all_correct_decided(10'000));
  EXPECT_TRUE(cluster.agreement());
  EXPECT_LE(cluster.max_decision_delays(), 2.0);
}

// --- View change ---------------------------------------------------------------

TEST(ViewChange, CrashedInitialLeaderIsReplaced) {
  auto cfg = consensus::QuorumConfig::create(4, 1, 1);
  Cluster cluster(lockstep_options(cfg), inputs_for(4, "in"));
  cluster.crash_at(0, 0);  // leader of view 1 never says anything
  cluster.start();
  ASSERT_TRUE(cluster.run_until_all_correct_decided(200'000));
  EXPECT_TRUE(cluster.agreement());
  auto d = cluster.decision_of(1);
  ASSERT_TRUE(d.has_value());
  EXPECT_GT(d->view, 1u);
  // Nobody ever acknowledged a proposal in view 1, so the new leader is
  // free to propose its own input.
  EXPECT_EQ(d->value, Value::of_string("in1"));
}

TEST(ViewChange, LeaderCrashAfterProposalPreservesValue) {
  // The leader gets its proposal out (everyone acks) but the acks are
  // slow; views change; the adopted value must survive into later views.
  auto cfg = consensus::QuorumConfig::create(9, 2, 2);
  ClusterOptions options = lockstep_options(cfg);
  options.net.gst = 5'000;
  options.net.pre_gst_max_delay = 4'000;
  Cluster cluster(options, inputs_for(9, "in"));
  cluster.crash_at(0, 150);  // proposal (sent at 0) is out; leader dies
  cluster.start();
  ASSERT_TRUE(cluster.run_until_all_correct_decided(1'000'000));
  EXPECT_TRUE(cluster.agreement());
}

TEST(ViewChange, TwoConsecutiveLeaderCrashes) {
  auto cfg = consensus::QuorumConfig::create(9, 2, 2);
  Cluster cluster(lockstep_options(cfg), inputs_for(9, "in"));
  cluster.crash_at(0, 0);
  cluster.crash_at(1, 0);  // leaders of views 1 and 2 both dead
  cluster.start();
  ASSERT_TRUE(cluster.run_until_all_correct_decided(2'000'000));
  EXPECT_TRUE(cluster.agreement());
  auto d = cluster.decision_of(2);
  ASSERT_TRUE(d.has_value());
  EXPECT_GE(d->view, 3u);
}

// --- Slow path -------------------------------------------------------------------

TEST(SlowPath, DecidesWithMoreThanTFaults) {
  // n = 3f + 2t - 1 with f = 2, t = 1 -> n = 7. Two crashes (> t, <= f):
  // the fast quorum n - t = 6 is unreachable (only 5 correct), but the
  // slow path quorum ceil((n+f+1)/2) = 5 is.
  auto cfg = consensus::QuorumConfig::create(7, 2, 1);
  Cluster cluster(lockstep_options(cfg), inputs_for(7, "s"));
  cluster.crash_at(5, 0);
  cluster.crash_at(6, 0);
  cluster.start();
  ASSERT_TRUE(cluster.run_until_all_correct_decided(100'000));
  EXPECT_TRUE(cluster.agreement());
  for (const auto& d : cluster.decisions()) {
    EXPECT_TRUE(d.via_slow_path) << "p" << d.pid;
    EXPECT_EQ(d.view, 1u) << "slow path should not need a view change";
  }
  // Three message delays: propose, ack-sig, Commit.
  EXPECT_DOUBLE_EQ(cluster.max_decision_delays(), 3.0);
}

TEST(SlowPath, DisabledFallsBackToViewChange) {
  // Same fault pattern with the slow path off (vanilla rules): without
  // signed acks nobody can decide in view 1 (only n - t - 1 correct acks),
  // so liveness must come from a view change... but the fast quorum stays
  // unreachable in every view. This documents why the generalized protocol
  // needs the slow path; here we only check nobody decides prematurely and
  // no disagreement arises within a bounded horizon.
  auto cfg = consensus::QuorumConfig::create(7, 2, 1);
  ClusterOptions options = lockstep_options(cfg);
  options.node.replica.slow_path = false;
  Cluster cluster(options, inputs_for(7, "s"));
  cluster.crash_at(5, 0);
  cluster.crash_at(6, 0);
  cluster.start();
  cluster.run_until(500'000);
  EXPECT_TRUE(cluster.agreement());
  EXPECT_TRUE(cluster.decisions().empty());
}

TEST(SlowPath, FastPathWinsWhenFaultsWithinT) {
  // Same n = 7, f = 2, t = 1 config with exactly one crash: fast path.
  auto cfg = consensus::QuorumConfig::create(7, 2, 1);
  Cluster cluster(lockstep_options(cfg), inputs_for(7, "s"));
  cluster.crash_at(6, 0);
  cluster.start();
  ASSERT_TRUE(cluster.run_until_all_correct_decided(100'000));
  EXPECT_TRUE(cluster.agreement());
  for (const auto& d : cluster.decisions()) {
    EXPECT_FALSE(d.via_slow_path);
  }
  EXPECT_DOUBLE_EQ(cluster.max_decision_delays(), 2.0);
}

// --- Asynchrony ---------------------------------------------------------------------

TEST(Asynchrony, DecisionAfterGst) {
  auto cfg = consensus::QuorumConfig::create(4, 1, 1);
  ClusterOptions options = lockstep_options(cfg, 5);
  options.net.gst = 20'000;
  options.net.pre_gst_max_delay = 15'000;
  Cluster cluster(options, inputs_for(4, "a"));
  cluster.start();
  ASSERT_TRUE(cluster.run_until_all_correct_decided(5'000'000));
  EXPECT_TRUE(cluster.agreement());
  EXPECT_TRUE(cluster.decided_value_is_some_input());
}

// --- Property sweep: random crash patterns over many seeds ---------------------------

struct SweepParam {
  std::uint32_t f;
  std::uint32_t t;
  std::uint64_t seed;
};

class CrashSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(CrashSweep, AgreementAndLiveness) {
  const auto [f, t, seed] = GetParam();
  const std::uint32_t n = consensus::QuorumConfig::min_processes(f, t);
  auto cfg = consensus::QuorumConfig::create(n, f, t);

  ClusterOptions options = lockstep_options(cfg, seed);
  options.net.min_delay = 25;
  options.net.gst = 2'000;
  options.net.pre_gst_max_delay = 1'500;

  Cluster cluster(options, inputs_for(n, "p"));

  // Crash a random subset of size <= f at random times.
  sim::Rng rng(seed * 977 + f * 31 + t);
  std::vector<ProcessId> ids;
  for (ProcessId i = 0; i < n; ++i) ids.push_back(i);
  rng.shuffle(ids);
  std::uint32_t crashes = static_cast<std::uint32_t>(rng.next_below(f + 1));
  for (std::uint32_t i = 0; i < crashes; ++i) {
    cluster.crash_at(ids[i], static_cast<TimePoint>(rng.next_below(3'000)));
  }

  cluster.start();
  ASSERT_TRUE(cluster.run_until_all_correct_decided(20'000'000))
      << "f=" << f << " t=" << t << " seed=" << seed
      << " crashes=" << crashes;
  EXPECT_TRUE(cluster.agreement());
  EXPECT_TRUE(cluster.decided_value_is_some_input());
}

std::vector<SweepParam> sweep_params() {
  std::vector<SweepParam> params;
  for (std::uint32_t f = 1; f <= 3; ++f) {
    for (std::uint32_t t = 1; t <= f; ++t) {
      for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        params.push_back({f, t, seed});
      }
    }
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(RandomCrashes, CrashSweep,
                         ::testing::ValuesIn(sweep_params()),
                         [](const auto& info) {
                           const auto& p = info.param;
                           return "f" + std::to_string(p.f) + "t" +
                                  std::to_string(p.t) + "s" +
                                  std::to_string(p.seed);
                         });

}  // namespace
}  // namespace fastbft::runtime
