#include <gtest/gtest.h>

#include "net/tags.hpp"
#include "runtime/cluster.hpp"
#include "trace/trace.hpp"

namespace fastbft::trace {
namespace {

runtime::ClusterOptions lockstep() {
  runtime::ClusterOptions options;
  options.cfg = consensus::QuorumConfig::create(4, 1, 1);
  options.net.delta = 100;
  options.net.min_delay = 100;
  return options;
}

std::vector<Value> inputs() {
  return {Value::of_string("a"), Value::of_string("b"),
          Value::of_string("c"), Value::of_string("d")};
}

TEST(Trace, RecordsEveryMessage) {
  runtime::Cluster cluster(lockstep(), inputs());
  TraceRecorder recorder(cluster.network());
  cluster.start();
  ASSERT_TRUE(cluster.run_until_all_correct_decided(10'000));
  EXPECT_EQ(recorder.messages().size(),
            cluster.network().stats().total_messages());
}

TEST(Trace, TagFilter) {
  runtime::Cluster cluster(lockstep(), inputs());
  TraceRecorder recorder(cluster.network());
  cluster.start();
  ASSERT_TRUE(cluster.run_until_all_correct_decided(10'000));
  auto proposes = recorder.of_tag(net::tags::kPropose);
  EXPECT_EQ(proposes.size(), 4u);  // one broadcast from the leader
  for (const auto& m : proposes) {
    EXPECT_EQ(m.from, 0u);
    EXPECT_EQ(m.sent, 0);
  }
}

TEST(Trace, DeliveryTimesRespectDelta) {
  runtime::Cluster cluster(lockstep(), inputs());
  TraceRecorder recorder(cluster.network());
  cluster.start();
  ASSERT_TRUE(cluster.run_until_all_correct_decided(10'000));
  for (const auto& m : recorder.messages()) {
    if (m.from == m.to) {
      EXPECT_EQ(m.delivered, m.sent);
    } else {
      EXPECT_EQ(m.delivered - m.sent, 100);  // lock-step
    }
  }
}

TEST(Trace, RenderCollapsesBroadcasts) {
  runtime::Cluster cluster(lockstep(), inputs());
  TraceRecorder recorder(cluster.network());
  cluster.start();
  ASSERT_TRUE(cluster.run_until_all_correct_decided(10'000));

  RenderOptions options;
  options.tags = {net::tags::kPropose};
  std::string diagram = render_sequence(recorder, 4, options);
  // Leader's broadcast renders as one line to '*', not four lines.
  EXPECT_NE(diagram.find("p0 -> *"), std::string::npos);
  EXPECT_NE(diagram.find("PROPOSE"), std::string::npos);
  EXPECT_EQ(diagram.find("ACK"), std::string::npos) << "tag filter leaked";
}

TEST(Trace, RenderHidesSelfSendsByDefault) {
  runtime::Cluster cluster(lockstep(), inputs());
  TraceRecorder recorder(cluster.network());
  cluster.start();
  ASSERT_TRUE(cluster.run_until_all_correct_decided(10'000));
  std::string diagram = render_sequence(recorder, 4, {});
  EXPECT_EQ(diagram.find("p0 -> {p0}"), std::string::npos);
}

TEST(Trace, RenderUntilCutsOff) {
  runtime::Cluster cluster(lockstep(), inputs());
  TraceRecorder recorder(cluster.network());
  cluster.start();
  ASSERT_TRUE(cluster.run_until_all_correct_decided(10'000));
  RenderOptions options;
  options.until = 50;  // only the t=0 sends
  std::string diagram = render_sequence(recorder, 4, options);
  // No rendered line may *start* at t=100 (note "delivered t=100" appears
  // inside the t=0 lines).
  EXPECT_EQ(diagram.find("\nt=100\t"), std::string::npos);
  EXPECT_EQ(diagram.rfind("t=0\t", 0), 0u) << "first line must be a t=0 send";
}

TEST(Trace, ParkedMessagesMarkedDelayed) {
  sim::Scheduler sched;
  net::SimNetworkConfig config;
  config.delta = 100;
  config.min_delay = 100;
  net::SimNetwork network(sched, 2, config);
  network.attach(0, [](ProcessId, const Bytes&) {});
  network.attach(1, [](ProcessId, const Bytes&) {});
  TraceRecorder recorder(network);
  network.set_script([](const net::Envelope&, TimePoint) {
    return std::optional<TimePoint>(kTimeInfinity);
  });
  network.send(0, 1, {net::tags::kAck});
  ASSERT_EQ(recorder.messages().size(), 1u);
  EXPECT_GE(recorder.messages()[0].delivered, kTimeInfinity);
  std::string diagram = render_sequence(recorder, 2, {});
  EXPECT_NE(diagram.find("delayed indefinitely"), std::string::npos);
}

TEST(Trace, ClearResets) {
  runtime::Cluster cluster(lockstep(), inputs());
  TraceRecorder recorder(cluster.network());
  cluster.start();
  ASSERT_TRUE(cluster.run_until_all_correct_decided(10'000));
  EXPECT_FALSE(recorder.messages().empty());
  recorder.clear();
  EXPECT_TRUE(recorder.messages().empty());
}

}  // namespace
}  // namespace fastbft::trace
