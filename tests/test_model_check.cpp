#include <gtest/gtest.h>

#include "consensus/selection.hpp"

/// Exhaustive small-scale model check of the view-change selection
/// algorithm — the heart of the paper's safety argument (Lemmas 3.1-3.5,
/// Appendix A.3).
///
/// Model: the view-1 leader q equivocated between values x and y. Every
/// correct non-q process either acked x, acked y, or nothing (nil); f - 1
/// further processes are Byzantine and vote arbitrarily. The view-2 leader
/// collects n - f votes from an arbitrary subset of the non-q processes.
///
/// Checked for EVERY reachable configuration, vote subset and Byzantine
/// vote choice:
///   * if x could have been decided (fast path: enough ackers to form an
///     n - t quorum together with the f Byzantine processes; slow path:
///     enough correct commit-certificate holders), the selection is
///     Forced(x) — never Free, never Forced(y);
///   * x and y can never both be decidable (quorum intersection);
///   * with n - f non-equivocator votes the selection never stalls.
///
/// Votes are constructed structurally (run_selection operates on
/// pre-validated votes; signatures are checked elsewhere —
/// tests/test_certs.cpp and test_selection.cpp).

namespace fastbft::consensus {
namespace {

struct Model {
  QuorumConfig cfg;
  LeaderFn leader = nullptr;
  ProcessId q = 0;  // the equivocating view-1 leader of the modeled slot
  Value x = Value::of_string("X");
  Value y = Value::of_string("Y");

  /// `slot` selects the pipelined consensus instance being modeled: the
  /// engine runs slot s under the shifted leader base(v + s - 1)
  /// (SlotMux::leader_for with rotate_leaders on), so each slot starts from
  /// a different equivocator and a different wrap-around order. slot = 1 is
  /// the unshifted single-slot protocol.
  explicit Model(std::uint32_t f, std::uint32_t t, std::uint64_t slot = 1)
      : cfg(QuorumConfig::create(QuorumConfig::min_processes(f, t), f, t)) {
    LeaderFn base = round_robin_leader(cfg.n);
    if (slot == 1) {
      leader = base;
    } else {
      const View shift = static_cast<View>(slot - 1);
      leader = [base, shift](View v) { return base(v + shift); };
    }
    q = leader(1);
  }

  VoteRecord make_vote(ProcessId voter, const Value* value, bool with_cc) {
    VoteRecord r;
    r.voter = voter;
    if (value) {
      r.vote = Vote::of(*value, 1, ProgressCert{}, crypto::Signature{});
    } else {
      r.vote = Vote::nil();
    }
    if (with_cc && value) {
      CommitCert cc;
      cc.x = *value;
      cc.v = 1;
      r.cc = cc;
    }
    return r;
  }
};

/// One adversary configuration: counts of correct non-q processes that
/// acked x (cx, of which hx hold a commit certificate for x), acked y
/// (cy / hy), or nothing (cn).
struct World {
  std::uint32_t cx, hx, cy, hy, cn;
};

/// Enumerates leader vote sets of size n - f and Byzantine vote choices;
/// calls `check` with the resulting vote vector.
template <typename Fn>
void for_each_vote_set(Model& model, const World& world, bool slow_path,
                       const Fn& check) {
  const QuorumConfig& cfg = model.cfg;
  const std::uint32_t b = cfg.f - 1;  // Byzantine non-q processes
  const std::uint32_t quorum = cfg.vote_quorum();

  // Sampled counts: sxc/sxh x-voters without/with cc, syc/syh y-voters,
  // sn nil voters, sb Byzantine voters.
  for (std::uint32_t sxh = 0; sxh <= world.hx; ++sxh) {
    for (std::uint32_t sxc = 0; sxc <= world.cx - world.hx; ++sxc) {
      for (std::uint32_t syh = 0; syh <= world.hy; ++syh) {
        for (std::uint32_t syc = 0; syc <= world.cy - world.hy; ++syc) {
          for (std::uint32_t sn = 0; sn <= world.cn; ++sn) {
            std::uint32_t honest = sxh + sxc + syh + syc + sn;
            if (honest > quorum) continue;
            std::uint32_t sb = quorum - honest;
            if (sb > b) continue;
            // Byzantine votes: bx for x, by for y, rest nil. A Byzantine
            // process could also attach the x (or y) commit certificate if
            // one exists; attaching can only help the certified value, so
            // the adversarial worst case is to withhold it.
            for (std::uint32_t bx = 0; bx <= sb; ++bx) {
              for (std::uint32_t by = 0; by + bx <= sb; ++by) {
                std::vector<VoteRecord> votes;
                ProcessId id = 0;  // ids only need to be distinct, non-q
                auto add = [&](std::uint32_t count, const Value* value,
                               bool cc) {
                  for (std::uint32_t i = 0; i < count; ++i) {
                    if (id == model.q) ++id;  // skip the equivocator
                    votes.push_back(model.make_vote(id++, value, cc));
                  }
                };
                add(sxh, &model.x, slow_path);
                add(sxc, &model.x, false);
                add(syh, &model.y, slow_path);
                add(syc, &model.y, false);
                add(sn, nullptr, false);
                add(bx, &model.x, false);
                add(by, &model.y, false);
                add(sb - bx - by, nullptr, false);
                check(votes);
              }
            }
          }
        }
      }
    }
  }
}

void run_model(std::uint32_t f, std::uint32_t t, bool slow_path,
               std::uint64_t slot = 1) {
  Model model(f, t, slot);
  const QuorumConfig& cfg = model.cfg;
  const std::uint32_t correct = cfg.n - 1 - (cfg.f - 1);  // non-q correct
  std::uint64_t worlds = 0, vote_sets = 0;

  for (std::uint32_t cx = 0; cx <= correct; ++cx) {
    for (std::uint32_t cy = 0; cx + cy <= correct; ++cy) {
      std::uint32_t cn = correct - cx - cy;
      for (std::uint32_t hx = 0; hx <= (slow_path ? cx : 0); ++hx) {
        for (std::uint32_t hy = 0; hy <= (slow_path ? cy : 0); ++hy) {
          World world{cx, hx, cy, hy, cn};
          ++worlds;

          // Decidability of each value given full adversary cooperation
          // (q and the f-1 Byzantine processes ack/sign everything).
          bool x_fast = cx + cfg.f >= cfg.fast_quorum();
          bool y_fast = cy + cfg.f >= cfg.fast_quorum();
          bool x_slow =
              slow_path && hx + cfg.f >= cfg.commit_quorum() && hx > 0;
          bool y_slow =
              slow_path && hy + cfg.f >= cfg.commit_quorum() && hy > 0;
          // Commit certificates cannot exist without enough correct
          // signers; holders require the certificate to exist.
          bool cc_x_possible = cx + cfg.f >= cfg.commit_quorum();
          bool cc_y_possible = cy + cfg.f >= cfg.commit_quorum();
          if (hx > 0 && !cc_x_possible) continue;  // unreachable world
          if (hy > 0 && !cc_y_possible) continue;

          bool x_decidable = x_fast || x_slow;
          bool y_decidable = y_fast || y_slow;
          ASSERT_FALSE(x_decidable && y_decidable)
              << "two values decidable at once: quorum intersection broken "
              << "(cx=" << cx << " cy=" << cy << ")";

          for_each_vote_set(
              model, world, slow_path,
              [&](const std::vector<VoteRecord>& votes) {
                ++vote_sets;
                SelectionResult r = run_selection(cfg, votes, model.leader);
                ASSERT_NE(r.kind, SelectionResult::Kind::NeedMoreVotes)
                    << "selection stalled with a full vote quorum";
                if (x_decidable) {
                  ASSERT_EQ(r.kind, SelectionResult::Kind::Forced)
                      << "x decidable but selection left the leader free "
                      << "(cx=" << cx << " hx=" << hx << " cy=" << cy << ")";
                  ASSERT_EQ(r.value, model.x)
                      << "x decidable but selection forced another value";
                }
                if (y_decidable) {
                  ASSERT_EQ(r.kind, SelectionResult::Kind::Forced);
                  ASSERT_EQ(r.value, model.y);
                }
              });
        }
      }
    }
  }
  ::testing::Test::RecordProperty("worlds", static_cast<int>(worlds));
  ::testing::Test::RecordProperty("vote_sets", static_cast<int>(vote_sets));
  ASSERT_GT(vote_sets, 5u) << "the model must actually enumerate things";
}

TEST(SelectionModelCheck, VanillaF1) { run_model(1, 1, /*slow_path=*/false); }

TEST(SelectionModelCheck, VanillaF2) { run_model(2, 2, /*slow_path=*/false); }

TEST(SelectionModelCheck, GeneralizedF2T1Fast) {
  run_model(2, 1, /*slow_path=*/false);
}

TEST(SelectionModelCheck, GeneralizedF2T1Slow) {
  run_model(2, 1, /*slow_path=*/true);
}

TEST(SelectionModelCheck, GeneralizedF3T1Slow) {
  run_model(3, 1, /*slow_path=*/true);
}

TEST(SelectionModelCheck, GeneralizedF3T2Slow) {
  run_model(3, 2, /*slow_path=*/true);
}

// --- Pipelined engine path ---------------------------------------------------
//
// The same adversary schedules, run against the slot-shifted leader function
// the pipelined engine uses (SlotMux::leader_for with rotate_leaders on):
// slot s maps view v to base(v + s - 1), so the equivocator is the slot's
// actual initial leader (s - 1) mod n rather than process 0, and the
// round-robin order wraps differently. Safety must be invariant under the
// shift — these would have caught a selection that hard-coded leader(1) = 0.

TEST(SelectionModelCheck, PipelinedSlot2F1) {
  run_model(1, 1, /*slow_path=*/false, /*slot=*/2);
}

TEST(SelectionModelCheck, PipelinedSlot5F1) {
  // slot 5 on n = 4 wraps: the equivocator is process (5 - 1) % 4 = 0 again
  // but via a full rotation, exercising the modular arithmetic.
  run_model(1, 1, /*slow_path=*/false, /*slot=*/5);
}

TEST(SelectionModelCheck, PipelinedSlot2F2T1Slow) {
  run_model(2, 1, /*slow_path=*/true, /*slot=*/2);
}

TEST(SelectionModelCheck, PipelinedSlot5F2T1Slow) {
  run_model(2, 1, /*slow_path=*/true, /*slot=*/5);
}

}  // namespace
}  // namespace fastbft::consensus
