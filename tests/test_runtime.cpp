#include <gtest/gtest.h>

#include <set>

#include "adversary/recording_transport.hpp"
#include "runtime/cluster.hpp"

/// Runtime harness: cluster construction, decision accounting, fault
/// bookkeeping, network statistics integration, recording transport.

namespace fastbft::runtime {
namespace {

ClusterOptions basic_options(std::uint32_t n = 4, std::uint32_t f = 1,
                             std::uint32_t t = 1) {
  ClusterOptions options;
  options.cfg = consensus::QuorumConfig::create(n, f, t);
  options.net.delta = 100;
  options.net.min_delay = 100;
  return options;
}

std::vector<Value> inputs(std::uint32_t n) {
  std::vector<Value> v;
  for (std::uint32_t i = 0; i < n; ++i) {
    v.push_back(Value::of_string("i" + std::to_string(i)));
  }
  return v;
}

TEST(Cluster, DecisionAccounting) {
  Cluster cluster(basic_options(), inputs(4));
  cluster.start();
  ASSERT_TRUE(cluster.run_until_all_correct_decided(10'000));
  EXPECT_EQ(cluster.decisions().size(), 4u);
  for (ProcessId id = 0; id < 4; ++id) {
    auto d = cluster.decision_of(id);
    ASSERT_TRUE(d.has_value()) << "p" << id;
    EXPECT_EQ(d->pid, id);
    EXPECT_EQ(d->time, 200);
  }
  EXPECT_FALSE(cluster.decision_of(3).value().via_slow_path);
}

TEST(Cluster, FaultBookkeeping) {
  Cluster cluster(basic_options(), inputs(4));
  cluster.crash_at(2, 500);
  EXPECT_TRUE(cluster.is_faulty(2));
  EXPECT_FALSE(cluster.is_faulty(1));
  EXPECT_EQ(cluster.num_faulty(), 1u);
}

TEST(ClusterDeath, RejectsTooManyFaults) {
  Cluster cluster(basic_options(), inputs(4));  // f = 1
  cluster.crash_at(1, 0);
  cluster.crash_at(2, 0);
  EXPECT_DEATH(cluster.start(), "more faulty processes");
}

TEST(ClusterDeath, RejectsWrongInputCount) {
  EXPECT_DEATH(Cluster(basic_options(), inputs(3)), "one input per process");
}

TEST(Cluster, AllCorrectDecidedExcludesFaulty) {
  Cluster cluster(basic_options(), inputs(4));
  cluster.crash_at(3, 0);
  cluster.start();
  ASSERT_TRUE(cluster.run_until_all_correct_decided(10'000));
  EXPECT_EQ(cluster.decisions().size(), 3u);  // the crashed one never decides
}

TEST(Cluster, NetworkStatsAccumulate) {
  Cluster cluster(basic_options(), inputs(4));
  cluster.start();
  ASSERT_TRUE(cluster.run_until_all_correct_decided(10'000));
  const auto& stats = cluster.network().stats();
  EXPECT_GT(stats.total_messages(), 0u);
  EXPECT_GT(stats.total_bytes(), stats.total_messages());
  std::string summary = stats.summary();
  EXPECT_NE(summary.find("PROPOSE"), std::string::npos);
  EXPECT_NE(summary.find("ACK"), std::string::npos);
}

TEST(Cluster, MaxDecisionDelaysUsesLatestCorrectDecision) {
  Cluster cluster(basic_options(), inputs(4));
  cluster.start();
  ASSERT_TRUE(cluster.run_until_all_correct_decided(10'000));
  EXPECT_DOUBLE_EQ(cluster.max_decision_delays(), 2.0);
}

TEST(Cluster, NodeAccessorOnlyForHonestDefaults) {
  Cluster cluster(basic_options(), inputs(4));
  cluster.replace_process(2, [](const ProcessContext&) {
    struct Noop final : IProcess {
      void start() override {}
      void on_message(ProcessId, const Bytes&) override {}
    };
    return std::make_unique<Noop>();
  });
  cluster.start();
  EXPECT_NE(cluster.node(0), nullptr);
  EXPECT_EQ(cluster.node(2), nullptr);
}

TEST(Cluster, CustomFactoryReceivesContext) {
  Cluster cluster(basic_options(), inputs(4));
  ProcessContext seen;
  cluster.replace_process(3, [&seen](const ProcessContext& ctx) {
    seen = ctx;
    struct Noop final : IProcess {
      void start() override {}
      void on_message(ProcessId, const Bytes&) override {}
    };
    return std::make_unique<Noop>();
  });
  cluster.start();
  EXPECT_EQ(seen.id, 3u);
  EXPECT_EQ(seen.cfg.n, 4u);
  EXPECT_EQ(seen.input, Value::of_string("i3"));
  ASSERT_NE(seen.network, nullptr);
  ASSERT_NE(seen.scheduler, nullptr);
  ASSERT_TRUE(static_cast<bool>(seen.leader_of));
  EXPECT_EQ(seen.leader_of(1), 0u);
  EXPECT_EQ(seen.leader_of(5), 0u);  // round robin wraps at n = 4
}

TEST(Cluster, RunUntilAdvancesWithoutDecisions) {
  Cluster cluster(basic_options(), inputs(4));
  cluster.crash_at(0, 0);
  cluster.start();
  cluster.run_until(500);
  EXPECT_TRUE(cluster.decisions().empty());
  EXPECT_GE(cluster.scheduler().now(), 500);
}

// --- RecordingTransport ------------------------------------------------------------

TEST(RecordingTransport, CapturesAndClears) {
  adversary::RecordingTransport transport(2, 5);
  EXPECT_EQ(transport.self(), 2u);
  EXPECT_EQ(transport.cluster_size(), 5u);

  transport.send(0, {0x01});
  transport.broadcast({0x02});
  transport.broadcast_others({0x03});

  const auto& outbox = transport.peek_outbox();
  EXPECT_EQ(outbox.size(), 1 + 5 + 4u);
  EXPECT_EQ(outbox[0].to, 0u);
  EXPECT_EQ(outbox[0].from, 2u);

  auto taken = transport.take_outbox();
  EXPECT_EQ(taken.size(), 10u);
  EXPECT_TRUE(transport.peek_outbox().empty());
}

TEST(RecordingTransport, BroadcastOthersSkipsSelf) {
  adversary::RecordingTransport transport(1, 3);
  transport.broadcast_others({0x09});
  for (const auto& env : transport.peek_outbox()) {
    EXPECT_NE(env.to, 1u);
  }
}

// --- Leader function -----------------------------------------------------------------

TEST(RoundRobinLeader, CyclesThroughAllProcesses) {
  auto leader = consensus::round_robin_leader(4);
  EXPECT_EQ(leader(1), 0u);
  EXPECT_EQ(leader(2), 1u);
  EXPECT_EQ(leader(4), 3u);
  EXPECT_EQ(leader(5), 0u);
  std::set<ProcessId> seen;
  for (View v = 1; v <= 4; ++v) seen.insert(leader(v));
  EXPECT_EQ(seen.size(), 4u);
}

}  // namespace
}  // namespace fastbft::runtime
