#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "net/frame.hpp"
#include "net/link_policy.hpp"

/// Codec and connection-policy tests for the socket transport — all in
/// memory, zero socket code (the morphling idiom): torn reads, hostile
/// headers and handshake mismatches are exercised by feeding byte
/// sequences to FrameReader, and retry/heartbeat policy runs against a
/// fake µs clock. The actual sockets appear only in
/// tests/test_socket_transport.cpp and the tools.

namespace fastbft::net {
namespace {

Bytes bytes_of(const std::string& s) { return Bytes(s.begin(), s.end()); }

std::string str_of(ByteView v) {
  return std::string(reinterpret_cast<const char*>(v.data()), v.size());
}

// --- Header codec ------------------------------------------------------------

TEST(FrameHeaderTest, RoundTripsLittleEndian) {
  FrameHeader hdr;
  encode_frame_header(0x01020304, hdr);
  EXPECT_EQ(hdr[0], 0x04);  // LE: low byte first
  EXPECT_EQ(hdr[3], 0x01);
  EXPECT_EQ(decode_frame_header(hdr), 0x01020304u);
  encode_frame_header(0, hdr);
  EXPECT_EQ(decode_frame_header(hdr), 0u);
}

// --- FrameWriter -------------------------------------------------------------

TEST(FrameWriterTest, ProducesHeaderAndRejectsOversize) {
  FrameWriter writer(/*max_frame_bytes=*/8);
  FrameHeader hdr;
  EXPECT_TRUE(writer.header_for(8, hdr));
  EXPECT_EQ(decode_frame_header(hdr), 8u);
  EXPECT_FALSE(writer.header_for(9, hdr));

  auto frame = writer.frame(bytes_of("hello"));
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->size(), kFrameHeaderBytes + 5);
  EXPECT_FALSE(writer.frame(bytes_of("ninechars")).has_value());
}

// --- FrameReader: framing ----------------------------------------------------

TEST(FrameReaderTest, YieldsFramesAndHeartbeats) {
  FrameWriter writer;
  FrameReader reader;
  ASSERT_TRUE(reader.feed(*writer.frame(bytes_of("alpha"))));
  ASSERT_TRUE(reader.feed(*writer.frame(Bytes{})));  // heartbeat
  ASSERT_TRUE(reader.feed(*writer.frame(bytes_of("beta"))));

  auto f1 = reader.next();
  ASSERT_TRUE(f1.has_value());
  EXPECT_EQ(str_of(*f1), "alpha");
  auto f2 = reader.next();
  ASSERT_TRUE(f2.has_value());
  EXPECT_TRUE(f2->empty());  // heartbeat = empty payload
  auto f3 = reader.next();
  ASSERT_TRUE(f3.has_value());
  EXPECT_EQ(str_of(*f3), "beta");
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_EQ(reader.frames_seen(), 3u);
  EXPECT_EQ(reader.buffered(), 0u);
}

TEST(FrameReaderTest, TornReadsByteByByte) {
  // A recv() may return any prefix of the stream: feeding one byte at a
  // time must yield exactly the same frames as one big read, with the
  // partial tail buffered in between.
  FrameWriter writer;
  Bytes stream;
  for (const char* s : {"x", "longer-payload", ""}) {
    auto f = *writer.frame(bytes_of(s));
    stream.insert(stream.end(), f.begin(), f.end());
  }
  FrameReader reader;
  std::vector<std::string> seen;
  for (std::uint8_t byte : stream) {
    ASSERT_TRUE(reader.feed(ByteView(&byte, 1)));
    while (auto frame = reader.next()) seen.push_back(str_of(*frame));
  }
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0], "x");
  EXPECT_EQ(seen[1], "longer-payload");
  EXPECT_EQ(seen[2], "");
  EXPECT_EQ(reader.buffered(), 0u);
}

TEST(FrameReaderTest, TornReadAcrossHeaderBoundary) {
  FrameWriter writer;
  auto frame = *writer.frame(bytes_of("payload"));
  FrameReader reader;
  // Split inside the 4-byte header.
  ASSERT_TRUE(reader.feed(ByteView(frame.data(), 2)));
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_EQ(reader.buffered(), 2u);
  ASSERT_TRUE(reader.feed(ByteView(frame.data() + 2, frame.size() - 2)));
  auto out = reader.next();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(str_of(*out), "payload");
}

TEST(FrameReaderTest, OversizedFrameIsFatal) {
  FrameReader reader(/*max_frame_bytes=*/16);
  FrameHeader hdr;
  encode_frame_header(17, hdr);
  EXPECT_TRUE(reader.feed(ByteView(hdr.data(), hdr.size())));
  EXPECT_FALSE(reader.next().has_value());  // flips the sticky error
  EXPECT_TRUE(reader.error());
  EXPECT_STREQ(reader.error_reason(), "oversized frame");
  // The error is sticky: a byte stream cannot be resynchronized after a
  // bad length, so the connection must be dropped.
  EXPECT_FALSE(reader.feed(bytes_of("more")));
  EXPECT_FALSE(reader.next().has_value());
}

TEST(FrameReaderTest, GarbageHeaderIsFatal) {
  FrameReader reader;  // default 4 MiB ceiling
  const Bytes garbage = {0xff, 0xff, 0xff, 0xff, 0x00, 0x01};
  reader.feed(garbage);
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_TRUE(reader.error());
}

TEST(FrameReaderTest, PrepareCommitRecyclesBuffer) {
  // The readiness-loop path: recv() writes into prepare()'s tail and the
  // storage is grow-only, so capacity plateaus while frames keep flowing
  // (no per-frame allocation, no shrink/regrow memset churn).
  FrameWriter writer;
  FrameReader reader;
  auto frame = *writer.frame(bytes_of(std::string(1024, 'z')));
  std::size_t plateau = 0;
  for (int i = 0; i < 1000; ++i) {
    std::uint8_t* dst = reader.prepare(frame.size());
    std::memcpy(dst, frame.data(), frame.size());
    reader.commit(frame.size());
    auto out = reader.next();
    ASSERT_TRUE(out.has_value());
    ASSERT_EQ(out->size(), 1024u);
    if (i == 10) plateau = reader.capacity();
  }
  EXPECT_EQ(reader.frames_seen(), 1000u);
  EXPECT_EQ(reader.capacity(), plateau);
}

// --- Handshake ---------------------------------------------------------------

TEST(HandshakeTest, RoundTrips) {
  Handshake in;
  in.sender = 3;
  in.cluster_size = 7;
  Handshake out;
  ASSERT_EQ(Handshake::decode(in.encode(), out), Handshake::Result::Ok);
  EXPECT_EQ(out.sender, 3u);
  EXPECT_EQ(out.cluster_size, 7u);
}

TEST(HandshakeTest, RejectsBadMagicAndVersionMismatch) {
  Handshake hs;
  hs.sender = 1;
  hs.cluster_size = 4;
  Bytes wire = hs.encode();

  Bytes bad_magic = wire;
  bad_magic[0] ^= 0xff;
  Handshake out;
  EXPECT_EQ(Handshake::decode(bad_magic, out), Handshake::Result::BadMagic);

  // Version is the u16 after the 4-byte magic; a peer speaking a future
  // codec must be refused, not misparsed.
  Bytes bad_version = wire;
  bad_version[4] ^= 0x01;
  EXPECT_EQ(Handshake::decode(bad_version, out),
            Handshake::Result::VersionMismatch);
}

TEST(HandshakeTest, RejectsTruncationAndTrailingBytes) {
  Handshake hs;
  hs.sender = 2;
  hs.cluster_size = 4;
  Bytes wire = hs.encode();
  Handshake out;
  EXPECT_EQ(Handshake::decode(ByteView(wire.data(), wire.size() - 1), out),
            Handshake::Result::Malformed);
  Bytes padded = wire;
  padded.push_back(0);
  EXPECT_EQ(Handshake::decode(padded, out), Handshake::Result::Malformed);
  EXPECT_EQ(Handshake::decode(ByteView(), out), Handshake::Result::BadMagic);
}

// --- Backoff against a fake clock -------------------------------------------

TEST(BackoffTest, GrowsExponentiallyToCapWithBoundedJitter) {
  BackoffOptions opts;
  opts.initial_us = 10'000;
  opts.max_us = 80'000;
  opts.multiplier = 2.0;
  opts.jitter = 0.25;
  Backoff backoff(opts, /*seed=*/7);
  // Bases double 10ms -> 20 -> 40 -> 80 and then pin at the cap; every
  // delay is drawn from [base, base * 1.25).
  Duration expected_base = 10'000;
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(backoff.current_base(), expected_base);
    const Duration delay = backoff.next_delay();
    EXPECT_GE(delay, expected_base);
    EXPECT_LT(delay, static_cast<Duration>(expected_base * 1.25) + 1);
    expected_base = std::min<Duration>(opts.max_us, expected_base * 2);
  }
  EXPECT_EQ(backoff.current_base(), opts.max_us);
}

TEST(BackoffTest, DeterministicPerSeedAndResettable) {
  BackoffOptions opts;
  Backoff a(opts, 42), b(opts, 42), c(opts, 43);
  std::vector<Duration> seq_a, seq_b, seq_c;
  for (int i = 0; i < 6; ++i) {
    seq_a.push_back(a.next_delay());
    seq_b.push_back(b.next_delay());
    seq_c.push_back(c.next_delay());
  }
  EXPECT_EQ(seq_a, seq_b);  // same seed replays exactly
  EXPECT_NE(seq_a, seq_c);  // different links don't retry in lockstep
  a.reset();
  EXPECT_EQ(a.current_base(), opts.initial_us);
}

TEST(BackoffTest, ZeroJitterIsExact) {
  BackoffOptions opts;
  opts.initial_us = 5'000;
  opts.jitter = 0.0;
  Backoff backoff(opts, 1);
  EXPECT_EQ(backoff.next_delay(), 5'000);
  EXPECT_EQ(backoff.next_delay(), 10'000);
}

// --- LinkPolicy against a fake clock ----------------------------------------

TEST(LinkPolicyTest, RetryScheduleAndResetOnReconnect) {
  LinkPolicyOptions opts;
  opts.backoff.initial_us = 20'000;
  opts.backoff.jitter = 0.0;
  LinkPolicy policy(opts, /*seed=*/5);

  TimePoint now = 1'000;
  EXPECT_TRUE(policy.retry_due(now));  // nothing pending yet
  EXPECT_EQ(policy.on_connect_failed(now), now + 20'000);
  EXPECT_FALSE(policy.retry_due(now + 19'999));
  EXPECT_TRUE(policy.retry_due(now + 20'000));

  // Second failure doubles the delay...
  now += 20'000;
  EXPECT_EQ(policy.on_connect_failed(now), now + 40'000);

  // ...and a successful connect resets the exponential state, so the
  // next failure starts over at the initial delay.
  now += 40'000;
  policy.on_established(now);
  EXPECT_EQ(policy.current_backoff_base(), 20'000);
  EXPECT_EQ(policy.on_connect_failed(now), now + 20'000);
}

TEST(LinkPolicyTest, HeartbeatDueAndRxExpiry) {
  LinkPolicyOptions opts;
  opts.heartbeat_interval_us = 100'000;
  opts.heartbeat_timeout_us = 400'000;
  LinkPolicy policy(opts);

  const TimePoint up = 1'000'000;
  policy.on_established(up);
  EXPECT_FALSE(policy.heartbeat_due(up + 99'999));
  EXPECT_TRUE(policy.heartbeat_due(up + 100'000));
  policy.on_tx(up + 100'000);  // heartbeat sent
  EXPECT_FALSE(policy.heartbeat_due(up + 150'000));

  // Inbound traffic keeps the peer alive; silence past the timeout (4x
  // the tx interval, so a busy-but-alive peer is never cut) kills it.
  policy.on_rx(up + 200'000);
  EXPECT_FALSE(policy.rx_expired(up + 599'999));
  EXPECT_TRUE(policy.rx_expired(up + 600'000));
}

TEST(LinkPolicyTest, EstablishedDeadlineIsEarlierOfHeartbeatAndExpiry) {
  LinkPolicyOptions opts;
  opts.heartbeat_interval_us = 100'000;
  opts.heartbeat_timeout_us = 400'000;
  LinkPolicy policy(opts);
  policy.on_established(1'000);
  // Fresh link: the tx heartbeat comes due first.
  EXPECT_EQ(policy.next_established_deadline(), 1'000 + 100'000);
  // After tx, but with rx still stale, the rx expiry bounds the deadline.
  policy.on_tx(350'000);
  EXPECT_EQ(policy.next_established_deadline(), 1'000 + 400'000);
}

}  // namespace
}  // namespace fastbft::net
