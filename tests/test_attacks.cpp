#include <gtest/gtest.h>

#include "adversary/recording_transport.hpp"
#include "consensus/replica.hpp"

/// Protocol-level attack tests: crafted adversarial messages delivered to
/// honest replicas must never produce unjustified acks, certificates or
/// decisions. These complement the schedule-level tests in test_faults.cpp
/// by attacking the message validation logic directly.

namespace fastbft::consensus {
namespace {

using adversary::RecordingTransport;

class AttackTest : public ::testing::Test {
 protected:
  // Generalized config: n = 7, f = 2, t = 1.
  QuorumConfig cfg_ = QuorumConfig::create(7, 2, 1);
  std::shared_ptr<const crypto::KeyStore> keys_ =
      std::make_shared<const crypto::KeyStore>(31, 7);
  crypto::Verifier verifier_{keys_};
  LeaderFn leader_ = round_robin_leader(7);
  Value x_ = Value::of_string("X");
  Value y_ = Value::of_string("Y");

  RecordingTransport transport_{1, 7};
  std::optional<DecisionRecord> decided_;

  std::unique_ptr<Replica> replica(ProcessId id) {
    return std::make_unique<Replica>(
        cfg_, id, Value::of_string("own"), transport_,
        crypto::Signer(keys_, id), verifier_, leader_,
        [this](const DecisionRecord& r) { decided_ = r; }, ReplicaOptions{});
  }

  crypto::Signature sign(ProcessId p, const char* dom, const Bytes& m) {
    return crypto::Signer(keys_, p).sign(dom, m);
  }

  ProgressCert cert_for(const Value& x, View v) {
    ProgressCert cert;
    for (ProcessId p = 0; p < cfg_.cert_quorum(); ++p) {
      cert.acks.push_back(
          SignatureEntry{p, sign(p, kDomCertAck, certack_preimage(x, v))});
    }
    return cert;
  }

  std::size_t sent_count(std::uint8_t tag) {
    std::size_t count = 0;
    for (const auto& env : transport_.peek_outbox()) {
      if (!env.payload.empty() && env.payload[0] == tag) ++count;
    }
    return count;
  }
};

// --- Proposal attacks ------------------------------------------------------------

TEST_F(AttackTest, ReplayedProposalFromEarlierViewRejected) {
  auto r = replica(1);
  // A perfectly valid view-1 proposal...
  ProposeMsg msg;
  msg.v = 1;
  msg.x = x_;
  msg.tau = sign(0, kDomPropose, propose_preimage(x_, 1));
  Bytes wire = msg.serialize();
  r->enter_view(3);
  transport_.take_outbox();
  // ...replayed after the replica moved to view 3 (from its original
  // signer, who is NOT leader(3)).
  r->on_message(0, wire);
  EXPECT_EQ(sent_count(net::tags::kAck), 0u);
}

TEST_F(AttackTest, ProposalWithCertForDifferentValueRejected) {
  auto r = replica(1);
  r->enter_view(2);
  transport_.take_outbox();
  ProposeMsg msg;
  msg.v = 2;
  msg.x = y_;
  msg.sigma = cert_for(x_, 2);  // certificate certifies x, proposal says y
  msg.tau = sign(1, kDomPropose, propose_preimage(y_, 2));
  // leader(2) = p1 = the replica itself; deliver "from" p1.
  r->on_message(1, msg.serialize());
  EXPECT_EQ(sent_count(net::tags::kAck), 0u);
}

TEST_F(AttackTest, ProposalWithCertFromWrongViewRejected) {
  auto r = replica(2);
  r->enter_view(3);
  transport_.take_outbox();
  ProposeMsg msg;
  msg.v = 3;
  msg.x = x_;
  msg.sigma = cert_for(x_, 2);  // stale certificate (view 2, not 3)
  msg.tau = sign(2, kDomPropose, propose_preimage(x_, 3));
  r->on_message(2, msg.serialize());
  EXPECT_EQ(sent_count(net::tags::kAck), 0u);
}

TEST_F(AttackTest, RelayedProposalFromNonLeaderRejected) {
  auto r = replica(1);
  // p3 relays the genuine leader proposal — must be ignored, only the
  // leader's own channel counts (prevents replay-through-relay games).
  ProposeMsg msg;
  msg.v = 1;
  msg.x = x_;
  msg.tau = sign(0, kDomPropose, propose_preimage(x_, 1));
  r->on_message(3, msg.serialize());
  EXPECT_EQ(sent_count(net::tags::kAck), 0u);
}

// --- Ack / decision attacks ---------------------------------------------------------

TEST_F(AttackTest, AckFloodFromOneProcessNeverDecides) {
  auto r = replica(1);
  AckMsg ack{1, x_};
  for (int i = 0; i < 100; ++i) r->on_message(3, ack.serialize());
  EXPECT_FALSE(decided_.has_value());
}

TEST_F(AttackTest, FastQuorumMinusOneNeverDecides) {
  auto r = replica(1);
  AckMsg ack{1, x_};
  // fast quorum = n - t = 6; deliver 5 distinct ackers.
  for (ProcessId p : {0u, 2u, 3u, 4u, 5u}) r->on_message(p, ack.serialize());
  EXPECT_FALSE(decided_.has_value());
  r->on_message(6, ack.serialize());
  EXPECT_TRUE(decided_.has_value());
}

TEST_F(AttackTest, CommitQuorumOfForgedSigsNeverCommits) {
  auto r = replica(1);
  for (ProcessId p = 0; p < 7; ++p) {
    if (p == 1) continue;
    AckSigMsg m{1, x_, crypto::Signature{Bytes(32, static_cast<uint8_t>(p))}};
    r->on_message(p, m.serialize());
  }
  EXPECT_EQ(sent_count(net::tags::kCommit), 0u);
}

TEST_F(AttackTest, CommitWithMismatchedCertRejected) {
  auto r = replica(1);
  CommitCert cc;
  cc.x = x_;
  cc.v = 1;
  for (ProcessId p = 0; p < cfg_.commit_quorum(); ++p) {
    cc.sigs.push_back(SignatureEntry{p, sign(p, kDomAck, ack_preimage(x_, 1))});
  }
  // The certificate is genuine for (x, 1) but the message claims (y, 1).
  CommitMsg m{1, y_, cc};
  for (ProcessId p = 0; p < 5; ++p) r->on_message(p, m.serialize());
  EXPECT_FALSE(decided_.has_value());
}

TEST_F(AttackTest, SignedAckReplayAcrossViewsRejected) {
  auto r = replica(1);
  // phi_ack covers (x, v); replaying it under view 2 must fail.
  auto phi = sign(3, kDomAck, ack_preimage(x_, 1));
  AckSigMsg m{2, x_, phi};
  for (ProcessId p = 0; p < 7; ++p) {
    if (p != 1) r->on_message(p, m.serialize());
  }
  EXPECT_EQ(sent_count(net::tags::kCommit), 0u);
}

// --- View-change attacks --------------------------------------------------------------

TEST_F(AttackTest, LeaderIgnoresVoteReplayedIntoWrongView) {
  // p1 is leader of view 2. A valid view-9 vote (phi bound to 9) arrives
  // labeled as a view-2 vote: signature check must fail.
  auto r = replica(1);
  r->enter_view(2);
  transport_.take_outbox();

  VoteMsg m;
  m.v = 2;
  m.record.voter = 3;
  m.record.vote = Vote::nil();
  m.record.phi = sign(3, kDomVote, vote_preimage(m.record.vote, std::nullopt, 9));
  r->on_message(3, m.serialize());

  // Complete the quorum with honest votes; the replayed one must not have
  // been counted, so 2 honest + own vote = 3 < n - f = 5.
  for (ProcessId p : {4u, 5u}) {
    VoteMsg good;
    good.v = 2;
    good.record.voter = p;
    good.record.vote = Vote::nil();
    good.record.phi = sign(p, kDomVote,
                           vote_preimage(good.record.vote, std::nullopt, 2));
    r->on_message(p, good.serialize());
  }
  EXPECT_EQ(sent_count(net::tags::kCertReq), 0u);
}

TEST_F(AttackTest, CertReqFromNonLeaderRejected) {
  auto r = replica(2);
  r->enter_view(2);  // leader(2) = p1
  transport_.take_outbox();
  CertReqMsg req;
  req.v = 2;
  req.x = x_;
  for (ProcessId p : {0u, 3u, 4u, 5u, 6u}) {
    VoteRecord rec;
    rec.voter = p;
    rec.vote = Vote::nil();
    rec.phi = sign(p, kDomVote, vote_preimage(rec.vote, rec.cc, 2));
    req.votes.push_back(rec);
  }
  r->on_message(3, req.serialize());  // sender p3 is not leader(2)
  EXPECT_EQ(sent_count(net::tags::kCertAck), 0u);
  r->on_message(1, req.serialize());  // genuine leader channel
  EXPECT_EQ(sent_count(net::tags::kCertAck), 1u);
}

TEST_F(AttackTest, CertReqWithTooFewVotesRejected) {
  auto r = replica(2);
  r->enter_view(2);
  transport_.take_outbox();
  CertReqMsg req;
  req.v = 2;
  req.x = x_;
  for (ProcessId p : {0u, 3u, 4u, 5u}) {  // only 4 < n - f = 5
    VoteRecord rec;
    rec.voter = p;
    rec.vote = Vote::nil();
    rec.phi = sign(p, kDomVote, vote_preimage(rec.vote, rec.cc, 2));
    req.votes.push_back(rec);
  }
  r->on_message(1, req.serialize());
  EXPECT_EQ(sent_count(net::tags::kCertAck), 0u);
}

TEST_F(AttackTest, LeaderRejectsForgedCertAcks) {
  auto r = replica(1);
  r->enter_view(2);
  auto own = transport_.take_outbox();
  // Deliver own vote + 4 honest nil votes so the leader requests a cert.
  for (const auto& env : own) {
    if (env.payload[0] == net::tags::kVote) r->on_message(1, env.payload);
  }
  for (ProcessId p : {2u, 3u, 4u, 5u}) {
    VoteMsg good;
    good.v = 2;
    good.record.voter = p;
    good.record.vote = Vote::nil();
    good.record.phi = sign(p, kDomVote,
                           vote_preimage(good.record.vote, std::nullopt, 2));
    r->on_message(p, good.serialize());
  }
  ASSERT_GT(sent_count(net::tags::kCertReq), 0u);

  // Flood with forged CertAcks: no proposal may come out.
  for (ProcessId p = 2; p < 7; ++p) {
    CertAckMsg ca{2, Value::of_string("own"),
                  crypto::Signature{Bytes(32, 0x77)}};
    r->on_message(p, ca.serialize());
  }
  EXPECT_EQ(sent_count(net::tags::kPropose), 0u);

  // f + 1 = 3 genuine CertAcks unblock it.
  for (ProcessId p : {2u, 3u, 4u}) {
    CertAckMsg ca{2, Value::of_string("own"),
                  sign(p, kDomCertAck,
                       certack_preimage(Value::of_string("own"), 2))};
    r->on_message(p, ca.serialize());
  }
  EXPECT_EQ(sent_count(net::tags::kPropose), 7u);
}

TEST_F(AttackTest, CommitCertInVoteForcesValueInVivo) {
  // Appendix A.2 case 1, end to end at the replica level: a leader facing
  // equivocation at view w must select the commit-certified value.
  auto r = replica(1);
  r->enter_view(2);
  auto own = transport_.take_outbox();
  for (const auto& env : own) {
    if (env.payload[0] == net::tags::kVote) r->on_message(1, env.payload);
  }

  auto vote_for = [&](ProcessId p, const Value& val) {
    VoteMsg m;
    m.v = 2;
    m.record.voter = p;
    m.record.vote = Vote::of(
        val, 1, ProgressCert{}, sign(0, kDomPropose, propose_preimage(val, 1)));
    m.record.phi = sign(p, kDomVote, vote_preimage(m.record.vote, m.record.cc, 2));
    return m.serialize();
  };

  // Equivocation at view 1 (leader p0 signed both x and y) + one vote
  // carrying a commit certificate for y.
  r->on_message(2, vote_for(2, x_));
  r->on_message(3, vote_for(3, y_));
  {
    CommitCert cc;
    cc.x = y_;
    cc.v = 1;
    for (ProcessId p = 0; p < cfg_.commit_quorum(); ++p) {
      cc.sigs.push_back(SignatureEntry{p, sign(p, kDomAck, ack_preimage(y_, 1))});
    }
    VoteMsg m;
    m.v = 2;
    m.record.voter = 4;
    m.record.vote = Vote::nil();
    m.record.cc = cc;
    m.record.phi = sign(4, kDomVote, vote_preimage(m.record.vote, m.record.cc, 2));
    r->on_message(4, m.serialize());
  }
  {
    VoteMsg m;
    m.v = 2;
    m.record.voter = 5;
    m.record.vote = Vote::nil();
    m.record.phi = sign(5, kDomVote, vote_preimage(m.record.vote, m.record.cc, 2));
    r->on_message(5, m.serialize());
  }

  // 5 votes collected (own nil + x@1 + y@1 + nil+cc + nil) = n - f; the
  // equivocator p0 is not among the voters; selection must force y.
  auto reqs = transport_.take_outbox();
  bool found = false;
  for (const auto& env : reqs) {
    if (env.payload[0] != net::tags::kCertReq) continue;
    auto parsed = parse_message(env.payload);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(std::get<CertReqMsg>(*parsed).x, y_);
    found = true;
  }
  EXPECT_TRUE(found) << "leader must have requested certification of y";
}

}  // namespace
}  // namespace fastbft::consensus
