#include <gtest/gtest.h>

#include "roles/separated.hpp"

/// Section 4.4: with proposers disjoint from acceptors, 3f + 2t + 1
/// acceptors are optimal — one process *more* than the merged-roles bound
/// on each side. The separated-roles mini-protocol and the scripted
/// attack make both directions executable.

namespace fastbft::roles {
namespace {

TEST(SeparatedConfig, Quorums) {
  SeparatedConfig cfg{5, 1, 1, 2};
  EXPECT_EQ(cfg.fast_quorum(), 4u);
  EXPECT_EQ(cfg.vote_quorum(), 4u);
  EXPECT_EQ(cfg.forced_threshold(), 2u);
  EXPECT_EQ(cfg.proposer_id(1), 5u);
  EXPECT_EQ(cfg.proposer_id(2), 6u);
  EXPECT_EQ(cfg.proposer_id(3), 5u);  // wraps over the proposer pool
  EXPECT_EQ(cfg.total_keys(), 7u);
}

TEST(SeparatedConfig, TieIsPossibleExactlyBelowFabBound) {
  // Two values can both reach the forced threshold among m - f votes iff
  // 2 * threshold <= m - f, i.e. iff m <= 3f + 2t. That inequality is the
  // whole Section 4.4 story.
  for (std::uint32_t ff = 1; ff <= 4; ++ff) {
    for (std::uint32_t tt = 1; tt <= ff; ++tt) {
      std::uint32_t at_bound = 3 * ff + 2 * tt + 1;  // FaB optimal
      SeparatedConfig below{at_bound - 1, ff, tt, 2};
      SeparatedConfig at{at_bound, ff, tt, 2};
      EXPECT_LE(2 * below.forced_threshold(), below.vote_quorum())
          << "tie must be constructible below the bound";
      EXPECT_GT(2 * at.forced_threshold(), at.vote_quorum())
          << "tie must be impossible at the bound";
    }
  }
}

class SeparatedProtocolTest : public ::testing::Test {
 protected:
  SeparatedConfig cfg_{5, 1, 1, 2};
  std::shared_ptr<const crypto::KeyStore> keys_ =
      std::make_shared<const crypto::KeyStore>(7, cfg_.total_keys());
  crypto::Verifier verifier_{keys_};
  Value x_ = Value::of_string("X");

  crypto::Signature propose_sig(View v, const Value& x) {
    return crypto::Signer(keys_, cfg_.proposer_id(v))
        .sign("sep-propose", separated_propose_preimage(x, v));
  }
};

TEST_F(SeparatedProtocolTest, AcceptorAcceptsFirstValidProposalOnly) {
  Acceptor acceptor(cfg_, 0, keys_);
  EXPECT_TRUE(acceptor.on_propose(1, x_, propose_sig(1, x_)));
  EXPECT_FALSE(acceptor.on_propose(1, Value::of_string("Y"),
                                   propose_sig(1, Value::of_string("Y"))));
}

TEST_F(SeparatedProtocolTest, AcceptorRejectsBadProposerSignature) {
  Acceptor acceptor(cfg_, 0, keys_);
  // Signed by an acceptor, not the view's proposer.
  auto bad = crypto::Signer(keys_, 1).sign("sep-propose",
                                           separated_propose_preimage(x_, 1));
  EXPECT_FALSE(acceptor.on_propose(1, x_, bad));
}

TEST_F(SeparatedProtocolTest, FastQuorumDecides) {
  Acceptor acceptor(cfg_, 0, keys_);
  EXPECT_FALSE(acceptor.on_ack(1, 1, x_).has_value());
  EXPECT_FALSE(acceptor.on_ack(2, 1, x_).has_value());
  EXPECT_FALSE(acceptor.on_ack(3, 1, x_).has_value());
  auto decided = acceptor.on_ack(4, 1, x_);  // 4th distinct acker
  ASSERT_TRUE(decided.has_value());
  EXPECT_EQ(*decided, x_);
}

TEST_F(SeparatedProtocolTest, VotesValidateAndBindToView) {
  Acceptor acceptor(cfg_, 2, keys_);
  ASSERT_TRUE(acceptor.on_propose(1, x_, propose_sig(1, x_)));
  SeparatedVote vote = acceptor.enter_view(2);
  EXPECT_FALSE(vote.is_nil);
  EXPECT_EQ(vote.x, x_);
  EXPECT_TRUE(validate_separated_vote(verifier_, cfg_, vote, 2));
  EXPECT_FALSE(validate_separated_vote(verifier_, cfg_, vote, 3))
      << "votes must not replay across views";
}

TEST_F(SeparatedProtocolTest, SelectForcesDecidedValueWhenUnique) {
  std::vector<SeparatedVote> votes(4);
  for (int i = 0; i < 4; ++i) votes[static_cast<std::size_t>(i)].voter =
      static_cast<ProcessId>(i);
  votes[0].is_nil = false;
  votes[0].x = x_;
  votes[0].u = 1;
  votes[1].is_nil = false;
  votes[1].x = x_;
  votes[1].u = 1;
  auto selected = separated_select(cfg_, votes);
  ASSERT_TRUE(selected.has_value());
  EXPECT_EQ(*selected, x_);
}

TEST_F(SeparatedProtocolTest, SelectFreeWhenAllNil) {
  std::vector<SeparatedVote> votes(4);
  for (int i = 0; i < 4; ++i) votes[static_cast<std::size_t>(i)].voter =
      static_cast<ProcessId>(i);
  EXPECT_FALSE(separated_select(cfg_, votes).has_value());
}

TEST_F(SeparatedProtocolTest, SelectTieBreaksToSmallestValue) {
  // The exploitable ambiguity: two values, each with threshold votes.
  std::vector<SeparatedVote> votes(4);
  Value big = Value::of_string("zz");
  Value small = Value::of_string("aa");
  for (int i = 0; i < 4; ++i) {
    auto& v = votes[static_cast<std::size_t>(i)];
    v.voter = static_cast<ProcessId>(i);
    v.is_nil = false;
    v.u = 1;
    v.x = i < 2 ? big : small;
  }
  auto selected = separated_select(cfg_, votes);
  ASSERT_TRUE(selected.has_value());
  EXPECT_EQ(*selected, small);
}

// --- The attack itself --------------------------------------------------------------

TEST(SeparatedAttack, BreaksSafetyBelowFabBound) {
  // m = 3f + 2t = 5 acceptors: one below FaB's separated-roles optimum.
  auto outcome = run_separated_attack(5);
  EXPECT_TRUE(outcome.disagreement) << outcome.describe();
  EXPECT_NE(outcome.recovered_value, outcome.early_value);
}

TEST(SeparatedAttack, HarmlessAtFabBound) {
  // m = 3f + 2t + 1 = 6: the threshold rises to f + t + 1, ties vanish,
  // and the recovery is forced back to the decided value.
  auto outcome = run_separated_attack(6);
  EXPECT_FALSE(outcome.disagreement) << outcome.describe();
  EXPECT_EQ(outcome.recovered_value, outcome.early_value);
}

TEST(SeparatedAttack, MarginAboveBound) {
  for (std::uint32_t m : {7u, 8u}) {
    auto outcome = run_separated_attack(m);
    EXPECT_FALSE(outcome.disagreement) << outcome.describe();
  }
}

TEST(SeparatedAttack, ContrastWithMergedRoles) {
  // The punchline of the paper: merged roles need 3f + 2t - 1 = 4, the
  // separated model needs 3f + 2t + 1 = 6, and the executable attacks
  // bracket both bounds (test_lower_bound.cpp covers the merged side).
  EXPECT_TRUE(run_separated_attack(5).disagreement);
  EXPECT_FALSE(run_separated_attack(6).disagreement);
}

TEST(SeparatedAttack, DescribeMentionsVerdict) {
  EXPECT_NE(run_separated_attack(5).describe().find("DISAGREEMENT"),
            std::string::npos);
  EXPECT_NE(run_separated_attack(6).describe().find("agreement preserved"),
            std::string::npos);
}

}  // namespace
}  // namespace fastbft::roles
