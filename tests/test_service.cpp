#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "net/threaded_network.hpp"
#include "smr/service.hpp"

/// The unified client API (smr::Service + smr::ClientSession), exercised
/// through the SAME test body on both runtimes: the deterministic
/// simulator and real OS threads. This is the point of the facade — the
/// session code (typed ops, f+1 signed-reply quorum, per-request
/// timers/failover, windowed backpressure, at-most-once retries) is
/// host-agnostic, so one scenario must pass unchanged on both.

namespace fastbft::smr {
namespace {

using namespace std::chrono_literals;

enum class Backend { kSim, kThreaded };

std::unique_ptr<Service> make_service(Backend backend,
                                      const ServiceConfig& config) {
  return backend == Backend::kSim ? make_sim_service(config)
                                  : make_threaded_service(config);
}

class ServiceApi : public ::testing::TestWithParam<Backend> {};

INSTANTIATE_TEST_SUITE_P(BothRuntimes, ServiceApi,
                         ::testing::Values(Backend::kSim, Backend::kThreaded),
                         [](const auto& info) {
                           return info.param == Backend::kSim ? "Sim"
                                                              : "Threaded";
                         });

/// Awaits a future with a generous budget and returns the reply.
Reply must_complete(Service& service, Future<Reply> future) {
  EXPECT_TRUE(service.await(future, 20'000ms)) << "request never completed";
  return future.value();
}

TEST_P(ServiceApi, TypedOpsCompleteWithQuorumVerifiedResults) {
  auto config = ServiceConfig{}
                    .with_cluster(4, 1, 1)
                    .with_sessions(1)
                    .with_batch(4)
                    .with_pipeline_depth(2)
                    .with_seed(11);
  auto service = make_service(GetParam(), config);
  service->start();
  ClientSession& session = service->session(0);

  Reply put = must_complete(*service, session.put("acct", "100"));
  EXPECT_EQ(put.op, OpKind::Put);
  EXPECT_GT(put.slot, 0u);
  EXPECT_TRUE(put.result.ok);

  Reply read = must_complete(*service, session.get("acct"));
  EXPECT_EQ(read.op, OpKind::Get);
  EXPECT_TRUE(read.result.found);
  EXPECT_EQ(read.result.value, "100");

  // Reads are linearized through the log: the read's slot is strictly
  // after the put that wrote the value it returned.
  EXPECT_GT(read.slot, put.slot);

  Reply cas_ok = must_complete(*service, session.cas("acct", "100", "250"));
  EXPECT_TRUE(cas_ok.result.ok);
  Reply cas_stale = must_complete(*service, session.cas("acct", "100", "9"));
  EXPECT_FALSE(cas_stale.result.ok) << "stale expectation must fail";
  Reply after = must_complete(*service, session.get("acct"));
  EXPECT_EQ(after.result.value, "250");

  Reply del = must_complete(*service, session.del("acct"));
  EXPECT_TRUE(del.result.found);
  Reply gone = must_complete(*service, session.get("acct"));
  EXPECT_FALSE(gone.result.found);

  EXPECT_EQ(session.completed(), 7u);
  EXPECT_EQ(session.in_flight(), 0u);
  // Completion proves f + 1 replicas executed; wait for the rest before
  // the store-agreement audit.
  EXPECT_TRUE(service->await_applied(7, 20'000ms));
  service->stop();
  EXPECT_TRUE(service->stores_agree());
}

TEST_P(ServiceApi, GatewayCrashFailsOverAndCompletes) {
  // Regression for the silent request loss: submitting through a crashed
  // gateway used to drop the command on the floor. The session's
  // per-request timer must fail over to the next gateway and complete.
  auto config = ServiceConfig{}
                    .with_cluster(4, 1, 1)
                    .with_sessions(1)
                    .with_first_gateway(1)  // p1 never leads view 1...
                    // ...which only holds under pinned (non-rotating)
                    // leaders, so pin them explicitly.
                    .with_rotating_leaders(false)
                    .with_seed(7);
  auto service = make_service(GetParam(), config);
  service->start();
  ClientSession& session = service->session(0);

  // A warm-up request through the healthy gateway proves the path works.
  Reply warm = must_complete(*service, session.put("k", "before"));
  EXPECT_TRUE(warm.result.ok);
  EXPECT_EQ(session.failovers(), 0u);

  // Kill the session's gateway, then submit: the request goes into a
  // black hole until the timer rotates to p2.
  service->crash(1);
  Reply reply = must_complete(*service, session.put("k", "after"));
  EXPECT_EQ(reply.op, OpKind::Put);
  EXPECT_GE(session.failovers(), 1u) << "completion required a failover";

  Reply read = must_complete(*service, session.get("k"));
  EXPECT_EQ(read.result.value, "after");

  EXPECT_TRUE(service->await_applied(3, 20'000ms));
  service->stop();
  EXPECT_TRUE(service->stores_agree());
}

TEST_P(ServiceApi, DuplicateRetriesApplyAtMostOnce) {
  // Retry-race regression: an aggressive request timeout makes the
  // session resubmit through other gateways while the original request is
  // still in flight, so replicas see duplicate SMR_REQUESTs. The
  // (client_id, sequence) dedup must keep every apply at-most-once — the
  // CAS chain would break (ok=false) if any command executed twice, and
  // the replicas' applied counters would exceed the distinct-request
  // count.
  const bool sim = GetParam() == Backend::kSim;
  auto config = ServiceConfig{}
                    .with_cluster(4, 1, 1)
                    .with_sessions(1)
                    .with_seed(13)
                    // Far below the decision latency, so retries are
                    // guaranteed to race the original.
                    .with_request_timeout(sim ? 250 : 1'500);
  if (!sim) config.with_link_delay(300us);
  auto service = make_service(GetParam(), config);
  service->start();
  ClientSession& session = service->session(0);

  Reply put = must_complete(*service, session.put("ctr", "0"));
  EXPECT_TRUE(put.result.ok);
  Reply c1 = must_complete(*service, session.cas("ctr", "0", "1"));
  EXPECT_TRUE(c1.result.ok) << "a double-applied predecessor breaks CAS";
  Reply c2 = must_complete(*service, session.cas("ctr", "1", "2"));
  EXPECT_TRUE(c2.result.ok);
  Reply read = must_complete(*service, session.get("ctr"));
  EXPECT_EQ(read.result.value, "2");

  EXPECT_GE(session.failovers(), 1u)
      << "the timeout never fired — the race this test exists for did "
         "not happen; tighten request_timeout";

  // Every correct replica applied exactly the 4 distinct commands, no
  // matter how many duplicate requests the retries injected.
  EXPECT_TRUE(service->await_applied(4, 20'000ms));
  service->stop();
  for (ProcessId id = 0; id < service->quorum().n; ++id) {
    EXPECT_EQ(service->applied_commands(id), 4u) << "p" << id;
  }
  EXPECT_TRUE(service->stores_agree());
}

TEST_P(ServiceApi, WindowedSessionsRunConcurrently) {
  // Two sessions, each submitting a burst past its window: the session
  // queues the overflow internally and drains it as completions free
  // slots; all requests complete and the stores converge.
  constexpr std::uint64_t kPerSession = 8;
  auto config = ServiceConfig{}
                    .with_cluster(4, 1, 1)
                    .with_sessions(2)
                    .with_window(2)
                    .with_batch(4)
                    .with_pipeline_depth(4)
                    .with_seed(17);
  auto service = make_service(GetParam(), config);
  service->start();

  std::vector<Future<Reply>> futures;
  for (std::uint32_t s = 0; s < 2; ++s) {
    for (std::uint64_t i = 1; i <= kPerSession; ++i) {
      futures.push_back(service->session(s).put(
          "s" + std::to_string(s) + "-k" + std::to_string(i),
          "v" + std::to_string(i)));
    }
  }
  bool all_done = service->run_until(
      [&] {
        for (const auto& f : futures) {
          if (!f.ready()) return false;
        }
        return true;
      },
      30'000ms);
  ASSERT_TRUE(all_done);

  for (std::uint32_t s = 0; s < 2; ++s) {
    EXPECT_EQ(service->session(s).completed(), kPerSession);
    EXPECT_EQ(service->session(s).queued(), 0u);
  }
  Reply probe = must_complete(*service, service->session(0).get("s1-k3"));
  EXPECT_EQ(probe.result.value, "v3");

  EXPECT_TRUE(service->await_applied(2 * kPerSession + 1, 30'000ms));
  service->stop();
  EXPECT_TRUE(service->stores_agree());
  for (ProcessId id = 0; id < service->quorum().n; ++id) {
    EXPECT_EQ(service->applied_commands(id), 2 * kPerSession + 1)
        << "p" << id;
  }
}

// --- Adaptive pipelining (engine/adaptive.hpp) -------------------------------

TEST_P(ServiceApi, AdaptiveDepthGrowsToMaxUnderLightLoad) {
  // A latency target no healthy decision comes near: every scored window
  // is healthy, so AIMD walks the effective depth from min to max and
  // keeps it there. The adaptive service must stay a correct service
  // throughout — requests complete, stores converge.
  auto config = ServiceConfig{}
                    .with_cluster(4, 1, 1)
                    .with_sessions(1)
                    .with_batch(4)
                    .with_adaptive(/*latency_target=*/1'000'000,
                                   /*min_depth=*/1, /*max_depth=*/4)
                    .with_seed(23);
  // Short windows so growth happens within the test budget (the noop
  // churn supplies decisions continuously on both runtimes).
  config.smr.adaptive.window = 2'000;
  auto service = make_service(GetParam(), config);
  service->start();

  ASSERT_LE(service->engine_stats(0).effective_depth, 4u);
  Reply put = must_complete(*service, service->session(0).put("k", "v"));
  EXPECT_TRUE(put.result.ok);

  bool grew = service->run_until(
      [&] {
        for (ProcessId id = 0; id < service->quorum().n; ++id) {
          if (service->engine_stats(id).effective_depth < 4) return false;
        }
        return true;
      },
      20'000ms);
  EXPECT_TRUE(grew) << "every replica should reach max_depth";

  auto stats = service->engine_stats(0);
  EXPECT_EQ(stats.effective_depth, 4u);
  EXPECT_EQ(stats.effective_batch, 4u) << "no breach, batch at ceiling";
  EXPECT_EQ(stats.adaptive_backoffs, 0u);

  Reply read = must_complete(*service, service->session(0).get("k"));
  EXPECT_EQ(read.result.value, "v");
  EXPECT_TRUE(service->await_applied(2, 20'000ms));
  service->stop();
  EXPECT_TRUE(service->stores_agree());
}

TEST_P(ServiceApi, AdaptiveBacksOffWhenTargetIsUnattainable) {
  // A 1-tick latency budget no real decision can meet: every window
  // breaches, so the controller records backoffs and pins the depth at
  // min_depth — and NONE of this may affect correctness, only pacing.
  auto config = ServiceConfig{}
                    .with_cluster(4, 1, 1)
                    .with_sessions(1)
                    .with_batch(4)
                    .with_adaptive(/*latency_target=*/1,
                                   /*min_depth=*/1, /*max_depth=*/4)
                    .with_seed(29);
  config.smr.adaptive.window = 2'000;
  auto service = make_service(GetParam(), config);
  service->start();

  Reply put = must_complete(*service, service->session(0).put("a", "1"));
  EXPECT_TRUE(put.result.ok);

  bool backed_off = service->run_until(
      [&] { return service->engine_stats(0).adaptive_backoffs >= 3; },
      20'000ms);
  EXPECT_TRUE(backed_off) << "unattainable target must keep breaching";

  auto stats = service->engine_stats(0);
  EXPECT_EQ(stats.effective_depth, 1u) << "breach after breach pins min";
  EXPECT_GE(stats.effective_batch, 1u);
  EXPECT_LE(stats.effective_batch, 4u);

  // The throttled service still completes work correctly.
  Reply read = must_complete(*service, service->session(0).get("a"));
  EXPECT_EQ(read.result.value, "1");
  EXPECT_TRUE(service->await_applied(2, 20'000ms));
  service->stop();
  EXPECT_TRUE(service->stores_agree());
}

TEST(AdaptiveSimDeterminism, IdenticalRunsProduceIdenticalTrajectories) {
  // The controller has no clock of its own — on the simulator its whole
  // trajectory is a pure function of the schedule. Two identical runs
  // driven for the same simulated time must agree on every observable,
  // including a latency target tight enough that some windows breach.
  struct Snapshot {
    std::uint32_t depth;
    std::uint32_t batch;
    std::uint64_t backoffs;
    std::uint64_t applied;
  };
  auto run = [] {
    auto config = ServiceConfig{}
                      .with_cluster(4, 1, 1)
                      .with_sessions(1)
                      .with_batch(4)
                      .with_adaptive(/*latency_target=*/1'500,
                                     /*min_depth=*/1, /*max_depth=*/4)
                      .with_seed(31);
    config.smr.adaptive.window = 1'000;
    auto service = make_sim_service(config);
    service->start();
    auto put = service->session(0).put("k", "v");
    EXPECT_TRUE(service->await(put, 5'000ms));
    // Fixed simulated-time budget with a never-true predicate: both runs
    // step the exact same schedule.
    service->run_until([] { return false; }, 50ms);
    std::vector<Snapshot> snaps;
    for (ProcessId id = 0; id < service->quorum().n; ++id) {
      auto stats = service->engine_stats(id);
      snaps.push_back({stats.effective_depth, stats.effective_batch,
                       stats.adaptive_backoffs,
                       service->applied_commands(id)});
    }
    return snaps;
  };

  auto first = run();
  auto second = run();
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].depth, second[i].depth) << "p" << i;
    EXPECT_EQ(first[i].batch, second[i].batch) << "p" << i;
    EXPECT_EQ(first[i].backoffs, second[i].backoffs) << "p" << i;
    EXPECT_EQ(first[i].applied, second[i].applied) << "p" << i;
  }
}

// --- Envelope pooling (threaded transport) -----------------------------------

TEST(ThreadedNetworkPool, SteadyStateReusesEnvelopeNodes) {
  // One sender, one receiver, strictly sequential sends: after the first
  // few deliveries the inbox recycles its retired queue nodes, so the
  // fresh-allocation count plateaus while reuses track the traffic.
  net::ThreadedNetwork net(2);
  std::atomic<std::uint64_t> received{0};
  net.attach(0, [](ProcessId, const Bytes&) {});
  net.attach(1, [&](ProcessId, const Bytes&) { received.fetch_add(1); });
  auto endpoint = net.endpoint(0);
  net.start();

  const std::uint64_t kMessages = 400;
  std::uint64_t allocs_before = net::PayloadStats::envelope_allocs();
  std::uint64_t reuses_before = net::PayloadStats::envelope_reuses();
  for (std::uint64_t i = 1; i <= kMessages; ++i) {
    endpoint->send(1, Bytes{0x01});
    // Sequential: wait for delivery so the node returns to the pool.
    while (received.load() < i) std::this_thread::yield();
  }
  net.stop();

  std::uint64_t allocs = net::PayloadStats::envelope_allocs() - allocs_before;
  std::uint64_t reuses = net::PayloadStats::envelope_reuses() - reuses_before;
  EXPECT_EQ(allocs + reuses, kMessages);
  EXPECT_LE(allocs, 4u) << "steady-state sends must draw from the pool";
  EXPECT_GE(reuses, kMessages - 4);
}

}  // namespace
}  // namespace fastbft::smr
