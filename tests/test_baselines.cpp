#include <gtest/gtest.h>

#include "adversary/behaviors.hpp"
#include "fab/fab.hpp"
#include "pbft/pbft.hpp"

/// PBFT and FaB Paxos baselines under the same harness as the main
/// protocol: common-case latency shape, view changes, fault tolerance.

namespace fastbft {
namespace {

using runtime::Cluster;
using runtime::ClusterOptions;

std::vector<Value> inputs_for(std::uint32_t n) {
  std::vector<Value> inputs;
  for (std::uint32_t i = 0; i < n; ++i) {
    inputs.push_back(Value::of_string("b" + std::to_string(i)));
  }
  return inputs;
}

ClusterOptions lockstep(consensus::QuorumConfig cfg, runtime::NodeFactory nf,
                        std::uint64_t seed = 1) {
  ClusterOptions options;
  options.cfg = cfg;
  options.net.delta = 100;
  options.net.min_delay = 100;
  options.net.seed = seed;
  options.node_factory = std::move(nf);
  return options;
}

// --- PBFT ----------------------------------------------------------------------

TEST(Pbft, CommonCaseThreeDelays) {
  // n = 3f + 1 = 4; PBFT needs pre-prepare + prepare + commit.
  auto cfg = consensus::QuorumConfig::create(4, 1, 1);
  Cluster cluster(lockstep(cfg, pbft::node_factory()), inputs_for(4));
  cluster.start();
  ASSERT_TRUE(cluster.run_until_all_correct_decided(10'000));
  EXPECT_TRUE(cluster.agreement());
  EXPECT_DOUBLE_EQ(cluster.max_decision_delays(), 3.0);
  for (const auto& d : cluster.decisions()) {
    EXPECT_EQ(d.value, Value::of_string("b0"));
  }
}

TEST(Pbft, ThreeDelaysAcrossF) {
  for (std::uint32_t f = 1; f <= 4; ++f) {
    std::uint32_t n = 3 * f + 1;
    auto cfg = consensus::QuorumConfig::create(n, f, 1);
    Cluster cluster(lockstep(cfg, pbft::node_factory(), f), inputs_for(n));
    cluster.start();
    ASSERT_TRUE(cluster.run_until_all_correct_decided(10'000)) << "f=" << f;
    EXPECT_DOUBLE_EQ(cluster.max_decision_delays(), 3.0) << "f=" << f;
  }
}

TEST(Pbft, ToleratesFCrashes) {
  auto cfg = consensus::QuorumConfig::create(7, 2, 1);
  Cluster cluster(lockstep(cfg, pbft::node_factory()), inputs_for(7));
  cluster.crash_at(3, 0);
  cluster.crash_at(6, 0);
  cluster.start();
  ASSERT_TRUE(cluster.run_until_all_correct_decided(100'000));
  EXPECT_TRUE(cluster.agreement());
  EXPECT_DOUBLE_EQ(cluster.max_decision_delays(), 3.0);
}

TEST(Pbft, LeaderCrashTriggersViewChange) {
  auto cfg = consensus::QuorumConfig::create(4, 1, 1);
  Cluster cluster(lockstep(cfg, pbft::node_factory()), inputs_for(4));
  cluster.crash_at(0, 0);
  cluster.start();
  ASSERT_TRUE(cluster.run_until_all_correct_decided(500'000));
  EXPECT_TRUE(cluster.agreement());
  auto d = cluster.decision_of(1);
  ASSERT_TRUE(d.has_value());
  EXPECT_GT(d->view, 1u);
}

TEST(Pbft, PreparedValueSurvivesViewChange) {
  // Leader crashes after its pre-prepare propagated; if any process
  // prepared, the prepared value must win the view change.
  auto cfg = consensus::QuorumConfig::create(4, 1, 1);
  Cluster cluster(lockstep(cfg, pbft::node_factory()), inputs_for(4));
  cluster.crash_at(0, 250);  // after prepare round, before everyone commits
  cluster.start();
  ASSERT_TRUE(cluster.run_until_all_correct_decided(500'000));
  EXPECT_TRUE(cluster.agreement());
}

TEST(Pbft, SelectionPicksHighestPreparedView) {
  auto keys = std::make_shared<const crypto::KeyStore>(4, 8);
  auto make_cert = [&](const Value& x, View u) {
    pbft::PreparedCert cert;
    cert.x = x;
    cert.u = u;
    for (ProcessId p = 0; p < 3; ++p) {
      cert.prepares.push_back(consensus::SignatureEntry{
          p, crypto::Signer(keys, p).sign("pbft-prepare",
                                          pbft::prepare_preimage(x, u))});
    }
    return cert;
  };
  std::vector<pbft::ViewChangeRecord> records(3);
  records[0].voter = 0;
  records[0].prepared = make_cert(Value::of_string("old"), 2);
  records[1].voter = 1;
  records[1].prepared = make_cert(Value::of_string("new"), 4);
  records[2].voter = 2;
  auto selected = pbft::select_from_view_changes(records);
  ASSERT_TRUE(selected.has_value());
  EXPECT_EQ(*selected, Value::of_string("new"));
  EXPECT_FALSE(pbft::select_from_view_changes({records[2]}).has_value());
}

TEST(Pbft, PreparedCertVerification) {
  auto keys = std::make_shared<const crypto::KeyStore>(4, 8);
  crypto::Verifier verifier(keys);
  Value x = Value::of_string("v");
  pbft::PreparedCert cert;
  cert.x = x;
  cert.u = 3;
  for (ProcessId p = 0; p < 3; ++p) {
    cert.prepares.push_back(consensus::SignatureEntry{
        p, crypto::Signer(keys, p).sign("pbft-prepare",
                                        pbft::prepare_preimage(x, 3))});
  }
  EXPECT_TRUE(pbft::verify_prepared_cert(verifier, 4, 1, cert));
  cert.prepares.pop_back();
  EXPECT_FALSE(pbft::verify_prepared_cert(verifier, 4, 1, cert));
}

// --- FaB -----------------------------------------------------------------------

TEST(Fab, RequiresThreeFPlusTwoTPlusOne) {
  EXPECT_EQ(fab::FabConfig::min_processes(1, 1), 6u);
  EXPECT_EQ(fab::FabConfig::min_processes(2, 2), 11u);
  auto cfg = fab::FabConfig::create(6, 1, 1);
  EXPECT_EQ(cfg.fast_quorum(), 5u);  // ceil((6+3+1)/2) = 5 = n - t
  EXPECT_EQ(cfg.vote_quorum(), 5u);
  EXPECT_EQ(cfg.forced_threshold(), 3u);  // f + t + 1 at minimal n
  EXPECT_DEATH((void)fab::FabConfig::create(5, 1, 1), "3f \\+ 2t \\+ 1");
}

TEST(Fab, CommonCaseTwoDelays) {
  // FaB is fast too — it just needs two more processes for the same (f, t).
  auto cfg = consensus::QuorumConfig::create(6, 1, 1);
  Cluster cluster(lockstep(cfg, fab::node_factory()), inputs_for(6));
  cluster.start();
  ASSERT_TRUE(cluster.run_until_all_correct_decided(10'000));
  EXPECT_TRUE(cluster.agreement());
  EXPECT_DOUBLE_EQ(cluster.max_decision_delays(), 2.0);
}

TEST(Fab, TwoDelaysWithTCrashes) {
  // n = 5f + 1 = 11 at f = t = 2; two crashes at Delta keep it fast.
  auto cfg = consensus::QuorumConfig::create(11, 2, 2);
  Cluster cluster(lockstep(cfg, fab::node_factory()), inputs_for(11));
  cluster.crash_at(5, 100);
  cluster.crash_at(9, 100);
  cluster.start();
  ASSERT_TRUE(cluster.run_until_all_correct_decided(10'000));
  EXPECT_TRUE(cluster.agreement());
  EXPECT_DOUBLE_EQ(cluster.max_decision_delays(), 2.0);
}

TEST(Fab, LeaderCrashRecovery) {
  auto cfg = consensus::QuorumConfig::create(6, 1, 1);
  Cluster cluster(lockstep(cfg, fab::node_factory()), inputs_for(6));
  cluster.crash_at(0, 0);
  cluster.start();
  ASSERT_TRUE(cluster.run_until_all_correct_decided(500'000));
  EXPECT_TRUE(cluster.agreement());
}

TEST(Fab, AcceptedValueSurvivesRecovery) {
  auto cfg = consensus::QuorumConfig::create(6, 1, 1);
  Cluster cluster(lockstep(cfg, fab::node_factory()), inputs_for(6));
  cluster.crash_at(0, 150);  // proposal out, leader dies before decision
  cluster.start();
  ASSERT_TRUE(cluster.run_until_all_correct_decided(500'000));
  EXPECT_TRUE(cluster.agreement());
}

TEST(Fab, SelectionThreshold) {
  auto cfg = fab::FabConfig::create(6, 1, 1);
  auto keys = std::make_shared<const crypto::KeyStore>(9, 6);
  Value x = Value::of_string("X");
  auto rec = [&](ProcessId voter, std::optional<View> u) {
    fab::FabVoteRecord r;
    r.voter = voter;
    if (u) {
      r.accepted = fab::AcceptedEntry{
          x, *u,
          crypto::Signer(keys, (*u - 1) % 6)
              .sign("fab-propose", fab::fab_propose_preimage(x, *u))};
    }
    r.phi = crypto::Signer(keys, voter)
                .sign("fab-vote", fab::fab_vote_preimage(r.accepted, 5));
    return r;
  };
  // forced_threshold = 3: two reports at the highest view are not enough.
  std::vector<fab::FabVoteRecord> records = {rec(0, 2), rec(1, 2), rec(2, {}),
                                             rec(3, {}), rec(4, {})};
  EXPECT_FALSE(fab::fab_select(cfg, records).has_value());
  records.push_back(rec(5, 2));
  auto forced = fab::fab_select(cfg, records);
  ASSERT_TRUE(forced.has_value());
  EXPECT_EQ(*forced, x);
}

TEST(Fab, EquivocatingLeaderSafe) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    auto cfg = consensus::QuorumConfig::create(6, 1, 1);
    Cluster cluster(lockstep(cfg, fab::node_factory(), seed), inputs_for(6));
    // FaB ignores our consensus-tag equivocation, so drive it with a silent
    // leader instead (the FaB-specific equivocation path is covered by
    // fab_select's counting rule, unit-tested above).
    cluster.replace_process(0, adversary::silent());
    cluster.start();
    ASSERT_TRUE(cluster.run_until_all_correct_decided(2'000'000));
    EXPECT_TRUE(cluster.agreement());
  }
}

// --- Cross-protocol comparison (the paper's headline table) ----------------------

TEST(Comparison, MinimalClusterSizes) {
  // f = t = 1: ours 4, FaB 6, PBFT 4 (but 3 steps).
  EXPECT_EQ(consensus::QuorumConfig::min_processes(1, 1), 4u);
  EXPECT_EQ(fab::FabConfig::min_processes(1, 1), 6u);

  auto ours = consensus::QuorumConfig::create(4, 1, 1);
  Cluster c1(lockstep(ours, {}), inputs_for(4));
  c1.start();
  ASSERT_TRUE(c1.run_until_all_correct_decided(10'000));
  EXPECT_DOUBLE_EQ(c1.max_decision_delays(), 2.0);

  auto fab_cfg = consensus::QuorumConfig::create(6, 1, 1);
  Cluster c2(lockstep(fab_cfg, fab::node_factory()), inputs_for(6));
  c2.start();
  ASSERT_TRUE(c2.run_until_all_correct_decided(10'000));
  EXPECT_DOUBLE_EQ(c2.max_decision_delays(), 2.0);

  auto pbft_cfg = consensus::QuorumConfig::create(4, 1, 1);
  Cluster c3(lockstep(pbft_cfg, pbft::node_factory()), inputs_for(4));
  c3.start();
  ASSERT_TRUE(c3.run_until_all_correct_decided(10'000));
  EXPECT_DOUBLE_EQ(c3.max_decision_delays(), 3.0);
}

}  // namespace
}  // namespace fastbft
