#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "common/histogram.hpp"

/// The log-bucketed latency histogram (common/histogram.hpp): exactness
/// below the sub-bucket resolution, the relative-error bound above it,
/// quantile semantics (monotonic, clamped to the recorded extremes),
/// merging and weighted recording. Both the adaptive controller and the
/// open-loop benchmark steer by these quantiles, so the bounds are pinned
/// here, not just eyeballed.

namespace fastbft {
namespace {

TEST(HistogramTest, EmptyHistogramReportsZeros) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.quantile(0.5), 0u);
  EXPECT_EQ(h.quantile(1.0), 0u);
}

TEST(HistogramTest, SmallValuesAreExact) {
  // Below 2^kSubBucketBits every value has its own bucket: quantiles of
  // 1..100 are the exact order statistics.
  Histogram h;
  for (std::uint64_t v = 1; v <= 100; ++v) h.record(v);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 100u);
  // Values above kSubBuckets (32) land in approximate buckets but stay
  // within the relative-error bound; below it they are exact.
  EXPECT_EQ(h.quantile(0.01), 1u);
  EXPECT_EQ(h.quantile(0.25), 25u);
  EXPECT_EQ(h.quantile(0.5), 50u);
  EXPECT_NEAR(static_cast<double>(h.quantile(0.99)), 99.0,
              99.0 * Histogram::relative_error());
  EXPECT_EQ(h.quantile(1.0), 100u);
  EXPECT_DOUBLE_EQ(h.mean(), 50.5);
}

TEST(HistogramTest, SingleValueDominatesEveryQuantile) {
  Histogram h;
  h.record_n(123'456'789, 1000);
  EXPECT_EQ(h.count(), 1000u);
  // One distinct value: clamping to [min, max] makes every quantile exact
  // no matter which bucket it hashed into.
  for (double q : {0.0, 0.5, 0.99, 0.999, 1.0}) {
    EXPECT_EQ(h.quantile(q), 123'456'789u) << "q = " << q;
  }
  EXPECT_DOUBLE_EQ(h.mean(), 123'456'789.0);
}

TEST(HistogramTest, QuantilesWithinRelativeErrorBound) {
  // A geometric spread of values across many octaves: every reported
  // quantile must be within relative_error() of the true order statistic.
  std::vector<std::uint64_t> values;
  for (std::uint64_t v = 1; v < (1ull << 40); v = v * 3 + 1) {
    values.push_back(v);
  }
  Histogram h;
  for (auto v : values) h.record(v);
  ASSERT_EQ(h.count(), values.size());  // already sorted ascending
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    std::size_t rank = static_cast<std::size_t>(
        std::max<double>(1.0, std::ceil(q * values.size())));
    double exact = static_cast<double>(values[rank - 1]);
    double reported = static_cast<double>(h.quantile(q));
    EXPECT_NEAR(reported, exact, exact * Histogram::relative_error())
        << "q = " << q;
  }
}

TEST(HistogramTest, QuantileIsMonotonicInQ) {
  std::mt19937_64 rng(7);
  Histogram h;
  for (int i = 0; i < 10'000; ++i) {
    // Skewed: mostly small with a heavy tail, like real latencies.
    std::uint64_t v = 1 + (rng() % 1000);
    if (rng() % 100 == 0) v *= 1000;
    h.record(v);
  }
  std::uint64_t prev = 0;
  for (double q = 0.0; q <= 1.0; q += 0.01) {
    std::uint64_t now = h.quantile(q);
    EXPECT_GE(now, prev) << "q = " << q;
    prev = now;
  }
  EXPECT_EQ(h.quantile(1.0), h.max());
}

TEST(HistogramTest, MergeEqualsRecordingEverythingIntoOne) {
  std::mt19937_64 rng(11);
  Histogram a, b, all;
  for (int i = 0; i < 5'000; ++i) {
    std::uint64_t v = rng() % 1'000'000;
    (i % 2 == 0 ? a : b).record(v);
    all.record(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
  EXPECT_DOUBLE_EQ(a.mean(), all.mean());
  for (double q : {0.01, 0.5, 0.9, 0.99, 0.999}) {
    EXPECT_EQ(a.quantile(q), all.quantile(q)) << "q = " << q;
  }
}

TEST(HistogramTest, MergeIntoEmptyAndFromEmpty) {
  Histogram empty, filled;
  filled.record(42);
  filled.record(77);

  Histogram target;
  target.merge(filled);  // into empty
  EXPECT_EQ(target.count(), 2u);
  EXPECT_EQ(target.min(), 42u);
  EXPECT_EQ(target.max(), 77u);

  target.merge(empty);  // from empty: no-op
  EXPECT_EQ(target.count(), 2u);
  EXPECT_EQ(target.min(), 42u);
}

TEST(HistogramTest, WeightedRecordCountsAsRepeats) {
  Histogram weighted, repeated;
  weighted.record_n(10, 7);
  weighted.record_n(1000, 3);
  for (int i = 0; i < 7; ++i) repeated.record(10);
  for (int i = 0; i < 3; ++i) repeated.record(1000);
  EXPECT_EQ(weighted.count(), repeated.count());
  EXPECT_DOUBLE_EQ(weighted.mean(), repeated.mean());
  for (double q : {0.1, 0.7, 0.71, 1.0}) {
    EXPECT_EQ(weighted.quantile(q), repeated.quantile(q)) << "q = " << q;
  }
  // p70 is still the low value, p71 crosses into the tail.
  EXPECT_EQ(weighted.quantile(0.7), 10u);
  EXPECT_GT(weighted.quantile(0.71), 900u);

  weighted.record_n(5, 0);  // zero-weight record is a no-op
  EXPECT_EQ(weighted.count(), 10u);
}

TEST(HistogramTest, ZeroAndHugeValues) {
  Histogram h;
  h.record(0);
  h.record(std::uint64_t{1} << 62);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), std::uint64_t{1} << 62);
  EXPECT_EQ(h.quantile(0.5), 0u);
  double top = static_cast<double>(h.quantile(1.0));
  double exact = static_cast<double>(std::uint64_t{1} << 62);
  EXPECT_NEAR(top, exact, exact * Histogram::relative_error());
}

TEST(HistogramTest, ResetClearsEverything) {
  Histogram h;
  h.record_n(500, 10);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.quantile(0.99), 0u);
  h.record(3);  // usable after reset
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.quantile(1.0), 3u);
}

}  // namespace
}  // namespace fastbft
