#include <gtest/gtest.h>

#include "runtime/threaded_cluster.hpp"

/// The unmodified replica over real OS threads and wall-clock time: the
/// protocol logic is transport-agnostic, so everything proven on the
/// deterministic simulator must also hold here (modulo timing assertions,
/// which become timeouts).

namespace fastbft::runtime {
namespace {

using namespace std::chrono_literals;

std::vector<Value> inputs(std::uint32_t n) {
  std::vector<Value> v;
  for (std::uint32_t i = 0; i < n; ++i) {
    v.push_back(Value::of_string("t" + std::to_string(i)));
  }
  return v;
}

TEST(Threaded, FourProcessesDecide) {
  auto cfg = consensus::QuorumConfig::create(4, 1, 1);
  ThreadedCluster cluster(cfg, inputs(4));
  cluster.start();
  ASSERT_TRUE(cluster.wait_all_correct_decided(5s));
  EXPECT_TRUE(cluster.agreement());
  auto decisions = cluster.decisions();
  ASSERT_EQ(decisions.size(), 4u);
  for (const auto& [pid, record] : decisions) {
    EXPECT_EQ(record.value, Value::of_string("t0")) << "p" << pid;
    EXPECT_EQ(record.view, 1u);
  }
}

TEST(Threaded, LargerClusterDecides) {
  auto cfg = consensus::QuorumConfig::create(14, 3, 3);
  ThreadedCluster cluster(cfg, inputs(14));
  cluster.start();
  ASSERT_TRUE(cluster.wait_all_correct_decided(10s));
  EXPECT_TRUE(cluster.agreement());
  EXPECT_EQ(cluster.decisions().size(), 14u);
}

TEST(Threaded, ToleratesTCrashedProcesses) {
  auto cfg = consensus::QuorumConfig::create(9, 2, 2);
  ThreadedCluster cluster(cfg, inputs(9));
  cluster.crash(4);
  cluster.crash(8);
  cluster.start();
  ASSERT_TRUE(cluster.wait_all_correct_decided(10s));
  EXPECT_TRUE(cluster.agreement());
  EXPECT_EQ(cluster.decisions().size(), 7u);
}

TEST(Threaded, SlowPathDecidesBeyondTFaults) {
  // n = 7, f = 2, t = 1 with two crashes: only the slow path can decide.
  auto cfg = consensus::QuorumConfig::create(7, 2, 1);
  ThreadedCluster cluster(cfg, inputs(7));
  cluster.crash(5);
  cluster.crash(6);
  cluster.start();
  ASSERT_TRUE(cluster.wait_all_correct_decided(10s));
  EXPECT_TRUE(cluster.agreement());
  for (const auto& [pid, record] : cluster.decisions()) {
    EXPECT_TRUE(record.via_slow_path) << "p" << pid;
  }
}

TEST(Threaded, DeadLeaderMeansNoDecisionWithoutSynchronizer) {
  // Documents the scope boundary: threaded clusters have no timer source,
  // so a dead leader stalls them (by design; view changes are exercised
  // on the simulator).
  auto cfg = consensus::QuorumConfig::create(4, 1, 1);
  ThreadedCluster cluster(cfg, inputs(4));
  cluster.crash(0);
  cluster.start();
  EXPECT_FALSE(cluster.wait_all_correct_decided(200ms));
  EXPECT_TRUE(cluster.decisions().empty());
}

TEST(Threaded, RepeatedRunsAllAgree) {
  for (int run = 0; run < 10; ++run) {
    auto cfg = consensus::QuorumConfig::create(4, 1, 1);
    ThreadedCluster cluster(cfg, inputs(4),
                            consensus::ReplicaOptions{},
                            /*key_seed=*/static_cast<std::uint64_t>(run));
    cluster.start();
    ASSERT_TRUE(cluster.wait_all_correct_decided(5s)) << "run " << run;
    EXPECT_TRUE(cluster.agreement()) << "run " << run;
  }
}

TEST(ThreadedNetworkTest, StopIsIdempotentAndDestructorSafe) {
  net::ThreadedNetwork network(2);
  network.attach(0, [](ProcessId, const Bytes&) {});
  network.attach(1, [](ProcessId, const Bytes&) {});
  network.start();
  network.send(0, 1, {0x01});
  network.stop();
  network.stop();  // second stop is a no-op
}

TEST(ThreadedNetworkTest, DisconnectedProcessReceivesNothingFurther) {
  net::ThreadedNetwork network(2);
  std::atomic<int> received{0};
  network.attach(0, [](ProcessId, const Bytes&) {});
  network.attach(1, [&](ProcessId, const Bytes&) { received.fetch_add(1); });
  network.start();
  network.disconnect(1);
  for (int i = 0; i < 50; ++i) network.send(0, 1, {0x01});
  std::this_thread::sleep_for(50ms);
  network.stop();
  EXPECT_EQ(received.load(), 0);
}

}  // namespace
}  // namespace fastbft::runtime
