#include <gtest/gtest.h>

#include "adversary/recording_transport.hpp"
#include "consensus/replica.hpp"

/// Hand-cranked unit tests of the replica engine: messages are crafted and
/// delivered explicitly, with no network or synchronizer in the loop.

namespace fastbft::consensus {
namespace {

using adversary::RecordingTransport;

class ReplicaTest : public ::testing::Test {
 protected:
  static constexpr std::uint32_t kN = 4;  // f = t = 1
  QuorumConfig cfg_ = QuorumConfig::create(kN, 1, 1);
  std::shared_ptr<const crypto::KeyStore> keys_ =
      std::make_shared<const crypto::KeyStore>(17, kN);
  crypto::Verifier verifier_{keys_};
  LeaderFn leader_ = round_robin_leader(kN);
  Value x_ = Value::of_string("X");
  Value y_ = Value::of_string("Y");

  RecordingTransport transport_{1, kN};
  std::optional<DecisionRecord> decided_;

  std::unique_ptr<Replica> make_replica(ProcessId id, Value input,
                                        bool slow_path = true) {
    return std::make_unique<Replica>(
        cfg_, id, std::move(input), transport_, crypto::Signer(keys_, id),
        verifier_, leader_,
        [this](const DecisionRecord& r) { decided_ = r; },
        ReplicaOptions{.slow_path = slow_path});
  }

  crypto::Signature sign(ProcessId p, const char* dom, const Bytes& m) {
    return crypto::Signer(keys_, p).sign(dom, m);
  }

  Bytes propose_wire(ProcessId proposer, const Value& x, View v,
                     ProgressCert sigma = {}) {
    ProposeMsg m;
    m.v = v;
    m.x = x;
    m.sigma = std::move(sigma);
    m.tau = sign(proposer, kDomPropose, propose_preimage(x, v));
    return m.serialize();
  }

  Bytes ack_wire(const Value& x, View v) { return AckMsg{v, x}.serialize(); }

  Bytes vote_wire(ProcessId voter, View v, Vote vote = Vote::nil(),
                  std::optional<CommitCert> cc = std::nullopt) {
    VoteMsg m;
    m.v = v;
    m.record.voter = voter;
    m.record.vote = std::move(vote);
    m.record.cc = std::move(cc);
    m.record.phi =
        sign(voter, kDomVote, vote_preimage(m.record.vote, m.record.cc, v));
    return m.serialize();
  }

  /// Messages of `tag` currently in the outbox (without clearing others).
  std::vector<net::Envelope> sent_of(std::uint8_t tag) {
    std::vector<net::Envelope> out;
    for (const auto& env : transport_.peek_outbox()) {
      if (!env.payload.empty() && env.payload[0] == tag) out.push_back(env);
    }
    return out;
  }
};

// --- Fast path ------------------------------------------------------------------

TEST_F(ReplicaTest, AcksValidProposal) {
  auto r = make_replica(1, y_);
  r->on_message(0, propose_wire(0, x_, 1));
  auto acks = sent_of(net::tags::kAck);
  ASSERT_EQ(acks.size(), kN);  // broadcast to everyone including self
  ASSERT_TRUE(r->current_vote().has_value());
  EXPECT_EQ(r->current_vote()->x, x_);
  EXPECT_EQ(r->current_vote()->u, 1u);
}

TEST_F(ReplicaTest, IgnoresProposalFromNonLeader) {
  auto r = make_replica(1, y_);
  r->on_message(2, propose_wire(2, x_, 1));
  EXPECT_TRUE(sent_of(net::tags::kAck).empty());
  EXPECT_FALSE(r->current_vote().has_value());
}

TEST_F(ReplicaTest, IgnoresProposalWithBadSignature) {
  auto r = make_replica(1, y_);
  ProposeMsg m;
  m.v = 1;
  m.x = x_;
  m.tau = sign(2, kDomPropose, propose_preimage(x_, 1));  // wrong signer
  r->on_message(0, m.serialize());
  EXPECT_TRUE(sent_of(net::tags::kAck).empty());
}

TEST_F(ReplicaTest, AcksOnlyFirstProposalInView) {
  auto r = make_replica(1, y_);
  r->on_message(0, propose_wire(0, x_, 1));
  std::size_t after_first = transport_.peek_outbox().size();
  r->on_message(0, propose_wire(0, y_, 1));  // equivocation: second proposal
  EXPECT_EQ(transport_.peek_outbox().size(), after_first);
  EXPECT_EQ(r->current_vote()->x, x_);
}

TEST_F(ReplicaTest, DecidesOnFastQuorumAcks) {
  auto r = make_replica(1, y_);
  r->on_message(0, ack_wire(x_, 1));
  r->on_message(2, ack_wire(x_, 1));
  EXPECT_FALSE(decided_.has_value());
  r->on_message(3, ack_wire(x_, 1));  // third of n - t = 3
  ASSERT_TRUE(decided_.has_value());
  EXPECT_EQ(decided_->value, x_);
  EXPECT_EQ(decided_->view, 1u);
  EXPECT_FALSE(decided_->via_slow_path);
}

TEST_F(ReplicaTest, DuplicateAckersDoNotCount) {
  auto r = make_replica(1, y_);
  r->on_message(0, ack_wire(x_, 1));
  r->on_message(0, ack_wire(x_, 1));
  r->on_message(0, ack_wire(x_, 1));
  EXPECT_FALSE(decided_.has_value());
}

TEST_F(ReplicaTest, MixedValueAcksDoNotCount) {
  auto r = make_replica(1, y_);
  r->on_message(0, ack_wire(x_, 1));
  r->on_message(2, ack_wire(y_, 1));
  r->on_message(3, ack_wire(x_, 1));
  EXPECT_FALSE(decided_.has_value());
}

TEST_F(ReplicaTest, DecidesOnlyOnce) {
  auto r = make_replica(1, y_);
  for (ProcessId p : {0u, 2u, 3u}) r->on_message(p, ack_wire(x_, 1));
  ASSERT_TRUE(decided_.has_value());
  decided_.reset();
  for (ProcessId p : {0u, 1u, 2u, 3u}) r->on_message(p, ack_wire(y_, 2));
  EXPECT_FALSE(decided_.has_value()) << "second decision must not fire";
}

TEST_F(ReplicaTest, LeaderOfViewOneProposesOnStart) {
  RecordingTransport t0(0, kN);
  Replica leader(cfg_, 0, x_, t0, crypto::Signer(keys_, 0), verifier_, leader_,
                 nullptr, ReplicaOptions{});
  leader.start();
  std::vector<net::Envelope> proposals;
  for (const auto& env : t0.peek_outbox()) {
    if (env.payload[0] == net::tags::kPropose) proposals.push_back(env);
  }
  ASSERT_EQ(proposals.size(), kN);
  auto parsed = parse_message(proposals[0].payload);
  EXPECT_EQ(std::get<ProposeMsg>(*parsed).x, x_);
}

TEST_F(ReplicaTest, NonLeaderStaysQuietOnStart) {
  auto r = make_replica(1, y_);
  r->start();
  EXPECT_TRUE(transport_.peek_outbox().empty());
}

// --- Slow path -------------------------------------------------------------------

TEST_F(ReplicaTest, SendsSignedAckAlongsideFastAck) {
  auto r = make_replica(1, y_);
  r->on_message(0, propose_wire(0, x_, 1));
  EXPECT_EQ(sent_of(net::tags::kAckSig).size(), kN);
}

TEST_F(ReplicaTest, VanillaModeSendsNoSignedAcks) {
  auto r = make_replica(1, y_, /*slow_path=*/false);
  r->on_message(0, propose_wire(0, x_, 1));
  EXPECT_EQ(sent_of(net::tags::kAck).size(), kN);
  EXPECT_TRUE(sent_of(net::tags::kAckSig).empty());
}

TEST_F(ReplicaTest, AssemblesCommitCertFromSignedAcks) {
  auto r = make_replica(1, y_);
  for (ProcessId p : {0u, 2u, 3u}) {  // commit_quorum = 3
    AckSigMsg m{1, x_, sign(p, kDomAck, ack_preimage(x_, 1))};
    r->on_message(p, m.serialize());
  }
  auto commits = sent_of(net::tags::kCommit);
  ASSERT_EQ(commits.size(), kN);
  ASSERT_TRUE(r->latest_cc().has_value());
  EXPECT_EQ(r->latest_cc()->x, x_);
  EXPECT_TRUE(verify_commit_cert(verifier_, cfg_, *r->latest_cc()));
}

TEST_F(ReplicaTest, InvalidAckSigIgnored) {
  auto r = make_replica(1, y_);
  for (ProcessId p : {0u, 2u, 3u}) {
    AckSigMsg m{1, x_, sign(p, kDomAck, ack_preimage(y_, 1))};  // wrong value
    r->on_message(p, m.serialize());
  }
  EXPECT_TRUE(sent_of(net::tags::kCommit).empty());
}

TEST_F(ReplicaTest, DecidesOnCommitQuorum) {
  auto r = make_replica(1, y_);
  CommitCert cc;
  cc.x = x_;
  cc.v = 1;
  for (ProcessId p : {0u, 2u, 3u}) {
    cc.sigs.push_back(SignatureEntry{p, sign(p, kDomAck, ack_preimage(x_, 1))});
  }
  CommitMsg m{1, x_, cc};
  for (ProcessId p : {0u, 2u, 3u}) r->on_message(p, m.serialize());
  ASSERT_TRUE(decided_.has_value());
  EXPECT_TRUE(decided_->via_slow_path);
  EXPECT_EQ(decided_->value, x_);
}

TEST_F(ReplicaTest, ForgedCommitCertIgnored) {
  auto r = make_replica(1, y_);
  CommitCert cc;
  cc.x = x_;
  cc.v = 1;
  for (ProcessId p : {0u, 2u, 3u}) {
    cc.sigs.push_back(SignatureEntry{p, crypto::Signature{Bytes(32, 0x11)}});
  }
  CommitMsg m{1, x_, cc};
  for (ProcessId p : {0u, 2u, 3u}) r->on_message(p, m.serialize());
  EXPECT_FALSE(decided_.has_value());
}

// --- View change -----------------------------------------------------------------

TEST_F(ReplicaTest, EnteringViewSendsVoteToNewLeader) {
  auto r = make_replica(1, y_);
  r->on_message(0, propose_wire(0, x_, 1));
  transport_.take_outbox();
  r->enter_view(3);  // leader(3) = p2
  auto votes = sent_of(net::tags::kVote);
  ASSERT_EQ(votes.size(), 1u);
  EXPECT_EQ(votes[0].to, 2u);
  auto parsed = parse_message(votes[0].payload);
  const auto& vm = std::get<VoteMsg>(*parsed);
  EXPECT_EQ(vm.record.voter, 1u);
  EXPECT_FALSE(vm.record.vote.is_nil);
  EXPECT_EQ(vm.record.vote.x, x_);
  EXPECT_TRUE(validate_vote_record(verifier_, cfg_, leader_, vm.record, 3));
}

TEST_F(ReplicaTest, ViewsAreMonotone) {
  auto r = make_replica(1, y_);
  r->enter_view(5);
  EXPECT_EQ(r->view(), 5u);
  r->enter_view(3);
  EXPECT_EQ(r->view(), 5u);
  r->enter_view(5);
  EXPECT_EQ(r->view(), 5u);
}

TEST_F(ReplicaTest, LeaderRunsViewChangeToProposal) {
  // p1 is leader of view 2. Feed it n - f = 3 nil votes; it must CertReq,
  // and after f + 1 = 2 CertAcks propose its own input.
  auto r = make_replica(1, y_);
  r->enter_view(2);
  // Own vote was sent to self through the transport; deliver it back.
  auto own_votes = sent_of(net::tags::kVote);
  ASSERT_EQ(own_votes.size(), 1u);
  EXPECT_EQ(own_votes[0].to, 1u);
  r->on_message(1, own_votes[0].payload);
  r->on_message(2, vote_wire(2, 2));
  EXPECT_TRUE(sent_of(net::tags::kCertReq).empty()) << "needs n-f votes";
  r->on_message(3, vote_wire(3, 2));
  auto reqs = sent_of(net::tags::kCertReq);
  ASSERT_EQ(reqs.size(), cfg_.cert_req_targets());

  // CertAcks from two processes.
  for (ProcessId p : {2u, 3u}) {
    CertAckMsg ca{2, y_, sign(p, kDomCertAck, certack_preimage(y_, 2))};
    r->on_message(p, ca.serialize());
  }
  auto proposals = sent_of(net::tags::kPropose);
  ASSERT_EQ(proposals.size(), kN);
  auto parsed = parse_message(proposals[0].payload);
  const auto& pm = std::get<ProposeMsg>(*parsed);
  EXPECT_EQ(pm.x, y_);  // all-nil: leader's own input
  EXPECT_EQ(pm.v, 2u);
  EXPECT_TRUE(verify_progress_cert(verifier_, cfg_, pm.x, 2, pm.sigma));
}

TEST_F(ReplicaTest, LeaderForcedToReproposeAdoptedValue) {
  // One voter acked x in view 1; selection must force x, not the leader's
  // own input.
  auto r = make_replica(1, y_);
  r->enter_view(2);
  auto own_votes = sent_of(net::tags::kVote);
  r->on_message(1, own_votes[0].payload);
  Vote v2 = Vote::of(x_, 1, ProgressCert{},
                     sign(0, kDomPropose, propose_preimage(x_, 1)));
  r->on_message(2, vote_wire(2, 2, v2));
  r->on_message(3, vote_wire(3, 2));
  for (ProcessId p : {2u, 3u}) {
    CertAckMsg ca{2, x_, sign(p, kDomCertAck, certack_preimage(x_, 2))};
    r->on_message(p, ca.serialize());
  }
  auto proposals = sent_of(net::tags::kPropose);
  ASSERT_FALSE(proposals.empty());
  auto parsed = parse_message(proposals[0].payload);
  EXPECT_EQ(std::get<ProposeMsg>(*parsed).x, x_);
}

TEST_F(ReplicaTest, RejectsVoteWithWrongSenderIdentity) {
  auto r = make_replica(1, y_);
  r->enter_view(2);
  auto own_votes = sent_of(net::tags::kVote);
  r->on_message(1, own_votes[0].payload);
  // p3's correctly signed vote delivered with channel identity p2.
  r->on_message(2, vote_wire(3, 2));
  r->on_message(3, vote_wire(3, 2));
  EXPECT_TRUE(sent_of(net::tags::kCertReq).empty());
}

TEST_F(ReplicaTest, CertReqVerifierRejectsUnjustifiedValue) {
  // Leader p1 claims y although a vote for x at the highest view forces x.
  auto r = make_replica(2, y_);  // p2 is a verifier
  r->enter_view(2);
  transport_.take_outbox();

  CertReqMsg req;
  req.v = 2;
  req.x = y_;
  {
    VoteRecord rec;
    rec.voter = 0;
    rec.vote = Vote::of(x_, 1, ProgressCert{},
                        sign(0, kDomPropose, propose_preimage(x_, 1)));
    rec.phi = sign(0, kDomVote, vote_preimage(rec.vote, rec.cc, 2));
    req.votes.push_back(rec);
  }
  for (ProcessId p : {2u, 3u}) {
    VoteRecord rec;
    rec.voter = p;
    rec.vote = Vote::nil();
    rec.phi = sign(p, kDomVote, vote_preimage(rec.vote, rec.cc, 2));
    req.votes.push_back(rec);
  }
  r->on_message(1, req.serialize());
  EXPECT_TRUE(sent_of(net::tags::kCertAck).empty());

  // The same request with the justified value is certified.
  req.x = x_;
  r->on_message(1, req.serialize());
  EXPECT_EQ(sent_of(net::tags::kCertAck).size(), 1u);
}

TEST_F(ReplicaTest, CertReqWithDuplicateVotersRejected) {
  auto r = make_replica(2, y_);
  r->enter_view(2);
  transport_.take_outbox();
  CertReqMsg req;
  req.v = 2;
  req.x = y_;
  for (int i = 0; i < 3; ++i) {
    VoteRecord rec;
    rec.voter = 3;
    rec.vote = Vote::nil();
    rec.phi = sign(3, kDomVote, vote_preimage(rec.vote, rec.cc, 2));
    req.votes.push_back(rec);
  }
  r->on_message(1, req.serialize());
  EXPECT_TRUE(sent_of(net::tags::kCertAck).empty());
}

TEST_F(ReplicaTest, FutureViewMessagesBufferedAndReplayed) {
  auto r = make_replica(1, y_);
  // Proposal for view 2 arrives while still in view 1.
  ProgressCert sigma;
  for (ProcessId p : {2u, 3u}) {
    sigma.acks.push_back(
        SignatureEntry{p, sign(p, kDomCertAck, certack_preimage(x_, 2))});
  }
  r->on_message(1, propose_wire(1, x_, 2, sigma));
  EXPECT_TRUE(sent_of(net::tags::kAck).empty());
  r->enter_view(2);
  EXPECT_FALSE(sent_of(net::tags::kAck).empty());
  EXPECT_EQ(r->current_vote()->u, 2u);
}

TEST_F(ReplicaTest, StaleViewProposalIgnored) {
  auto r = make_replica(1, y_);
  r->enter_view(4);
  transport_.take_outbox();
  r->on_message(0, propose_wire(0, x_, 1));
  EXPECT_TRUE(sent_of(net::tags::kAck).empty());
}

TEST_F(ReplicaTest, ProposalWithoutCertRejectedAfterViewOne) {
  auto r = make_replica(1, y_);
  r->enter_view(2);
  transport_.take_outbox();
  r->on_message(1, propose_wire(1, x_, 2));  // empty sigma, v > 1
  EXPECT_TRUE(sent_of(net::tags::kAck).empty());
}

// --- Future-view buffer cap ------------------------------------------------------

TEST_F(ReplicaTest, FutureBufferBoundedUnderByzantineFlood) {
  auto r = std::make_unique<Replica>(
      cfg_, 1, y_, transport_, crypto::Signer(keys_, 1), verifier_, leader_,
      nullptr, ReplicaOptions{.max_future_buffered = 8});
  // A Byzantine process sprays votes for ever-farther future views; the
  // buffer must stay at the cap instead of growing without bound.
  for (View v = 100; v < 400; ++v) {
    r->on_message(3, vote_wire(3, v));
  }
  EXPECT_LE(r->future_buffered_total(), 8u);
}

TEST_F(ReplicaTest, FloodedBufferStillAdmitsNearFutureMessages) {
  auto r = std::make_unique<Replica>(
      cfg_, 1, y_, transport_, crypto::Signer(keys_, 1), verifier_, leader_,
      nullptr, ReplicaOptions{.max_future_buffered = 4});
  // Fill the buffer with far-future junk.
  for (View v = 1000; v < 1004; ++v) {
    r->on_message(3, vote_wire(3, v));
  }
  EXPECT_EQ(r->future_buffered_total(), 4u);

  // A valid view-2 proposal arrives while flooded: it must evict junk
  // rather than be dropped, and must replay once view 2 is entered.
  ProgressCert sigma;
  for (ProcessId p : {2u, 3u}) {
    sigma.acks.push_back(
        SignatureEntry{p, sign(p, kDomCertAck, certack_preimage(x_, 2))});
  }
  r->on_message(1, propose_wire(1, x_, 2, sigma));
  EXPECT_LE(r->future_buffered_total(), 4u);

  r->enter_view(2);
  EXPECT_FALSE(sent_of(net::tags::kAck).empty())
      << "the buffered view-2 proposal must survive the flood and replay";
  EXPECT_EQ(r->current_vote()->u, 2u);
}

TEST_F(ReplicaTest, MessagesBeyondFullBufferAreDropped) {
  auto r = std::make_unique<Replica>(
      cfg_, 1, y_, transport_, crypto::Signer(keys_, 1), verifier_, leader_,
      nullptr, ReplicaOptions{.max_future_buffered = 2});
  r->on_message(2, vote_wire(2, 5));
  r->on_message(3, vote_wire(3, 6));
  EXPECT_EQ(r->future_buffered_total(), 2u);
  // Farther than everything buffered and the buffer is full: dropped.
  r->on_message(3, vote_wire(3, 7));
  EXPECT_EQ(r->future_buffered_total(), 2u);
}

}  // namespace
}  // namespace fastbft::consensus
