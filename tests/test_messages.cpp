#include <gtest/gtest.h>

#include "consensus/messages.hpp"

#include "sim/random.hpp"

namespace fastbft::consensus {
namespace {

class MessagesTest : public ::testing::Test {
 protected:
  std::shared_ptr<const crypto::KeyStore> keys_ =
      std::make_shared<const crypto::KeyStore>(3, 8);

  crypto::Signature sig(ProcessId p, const char* dom, const Bytes& m) {
    return crypto::Signer(keys_, p).sign(dom, m);
  }

  ProgressCert cert(const Value& x, View v) {
    ProgressCert c;
    for (ProcessId p = 0; p < 3; ++p) {
      c.acks.push_back(SignatureEntry{p, sig(p, kDomCertAck,
                                             certack_preimage(x, v))});
    }
    return c;
  }

  CommitCert cc(const Value& x, View v) {
    CommitCert c;
    c.x = x;
    c.v = v;
    for (ProcessId p = 0; p < 5; ++p) {
      c.sigs.push_back(SignatureEntry{p, sig(p, kDomAck, ack_preimage(x, v))});
    }
    return c;
  }

  Value x_ = Value::of_string("value-x");
};

template <typename T>
void expect_roundtrip(const T& msg, std::uint8_t expected_tag) {
  Bytes wire = msg.serialize();
  ASSERT_FALSE(wire.empty());
  EXPECT_EQ(wire[0], expected_tag);
  auto parsed = parse_message(wire);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_TRUE(std::holds_alternative<T>(*parsed));
}

TEST_F(MessagesTest, ProposeRoundtrip) {
  ProposeMsg m;
  m.v = 9;
  m.x = x_;
  m.sigma = cert(x_, 9);
  m.tau = sig(0, kDomPropose, propose_preimage(x_, 9));
  expect_roundtrip(m, net::tags::kPropose);

  auto parsed = parse_message(m.serialize());
  const auto& out = std::get<ProposeMsg>(*parsed);
  EXPECT_EQ(out.v, 9u);
  EXPECT_EQ(out.x, x_);
  EXPECT_EQ(out.sigma, m.sigma);
  EXPECT_EQ(out.tau, m.tau);
}

TEST_F(MessagesTest, AckRoundtrip) {
  AckMsg m{4, x_};
  expect_roundtrip(m, net::tags::kAck);
  auto out = std::get<AckMsg>(*parse_message(m.serialize()));
  EXPECT_EQ(out.v, 4u);
  EXPECT_EQ(out.x, x_);
}

TEST_F(MessagesTest, AckSigRoundtrip) {
  AckSigMsg m{4, x_, sig(2, kDomAck, ack_preimage(x_, 4))};
  expect_roundtrip(m, net::tags::kAckSig);
  auto out = std::get<AckSigMsg>(*parse_message(m.serialize()));
  EXPECT_EQ(out.phi_ack, m.phi_ack);
}

TEST_F(MessagesTest, CommitRoundtrip) {
  CommitMsg m;
  m.v = 4;
  m.x = x_;
  m.cc = cc(x_, 4);
  expect_roundtrip(m, net::tags::kCommit);
  auto out = std::get<CommitMsg>(*parse_message(m.serialize()));
  EXPECT_EQ(out.cc, m.cc);
}

TEST_F(MessagesTest, VoteRoundtripNil) {
  VoteMsg m;
  m.v = 6;
  m.record.voter = 3;
  m.record.vote = Vote::nil();
  m.record.phi = sig(3, kDomVote, vote_preimage(m.record.vote, std::nullopt, 6));
  expect_roundtrip(m, net::tags::kVote);
  auto out = std::get<VoteMsg>(*parse_message(m.serialize()));
  EXPECT_TRUE(out.record.vote.is_nil);
  EXPECT_FALSE(out.record.cc.has_value());
}

TEST_F(MessagesTest, VoteRoundtripFull) {
  VoteMsg m;
  m.v = 6;
  m.record.voter = 3;
  m.record.vote = Vote::of(x_, 5, cert(x_, 5),
                           sig(4, kDomPropose, propose_preimage(x_, 5)));
  m.record.cc = cc(x_, 4);
  m.record.phi = sig(3, kDomVote, vote_preimage(m.record.vote, m.record.cc, 6));
  expect_roundtrip(m, net::tags::kVote);
  auto out = std::get<VoteMsg>(*parse_message(m.serialize()));
  EXPECT_EQ(out.record, m.record);
}

TEST_F(MessagesTest, CertReqRoundtrip) {
  CertReqMsg m;
  m.v = 6;
  m.x = x_;
  for (ProcessId p = 0; p < 5; ++p) {
    VoteRecord r;
    r.voter = p;
    r.vote = Vote::nil();
    r.phi = sig(p, kDomVote, vote_preimage(r.vote, std::nullopt, 6));
    m.votes.push_back(r);
  }
  expect_roundtrip(m, net::tags::kCertReq);
  auto out = std::get<CertReqMsg>(*parse_message(m.serialize()));
  EXPECT_EQ(out.votes.size(), 5u);
  EXPECT_EQ(out.votes[4], m.votes[4]);
}

TEST_F(MessagesTest, CertAckRoundtrip) {
  CertAckMsg m{6, x_, sig(1, kDomCertAck, certack_preimage(x_, 6))};
  expect_roundtrip(m, net::tags::kCertAck);
}

TEST_F(MessagesTest, MessageViewExtraction) {
  AckMsg ack{17, x_};
  auto parsed = parse_message(ack.serialize());
  EXPECT_EQ(message_view(*parsed), 17u);
}

// --- Robustness ----------------------------------------------------------------

TEST_F(MessagesTest, EmptyPayloadRejected) {
  EXPECT_FALSE(parse_message({}).has_value());
}

TEST_F(MessagesTest, UnknownTagRejected) {
  EXPECT_FALSE(parse_message(Bytes{0x7f, 0x01, 0x02}).has_value());
}

TEST_F(MessagesTest, TrailingBytesRejected) {
  Bytes wire = AckMsg{4, x_}.serialize();
  wire.push_back(0x00);
  EXPECT_FALSE(parse_message(wire).has_value());
}

TEST_F(MessagesTest, TruncationRejectedAtEveryLength) {
  ProposeMsg m;
  m.v = 9;
  m.x = x_;
  m.sigma = cert(x_, 9);
  m.tau = sig(0, kDomPropose, propose_preimage(x_, 9));
  Bytes wire = m.serialize();
  for (std::size_t len = 0; len < wire.size(); ++len) {
    Bytes truncated(wire.begin(), wire.begin() + static_cast<long>(len));
    EXPECT_FALSE(parse_message(truncated).has_value()) << "len=" << len;
  }
}

TEST_F(MessagesTest, VoteWithCertTruncationRejectedAtEveryLength) {
  // The vote path exercises the nested decoders (Vote, ProgressCert,
  // optional CommitCert) that ProposeMsg truncation does not reach.
  VoteMsg m;
  m.v = 7;
  m.record.voter = 2;
  m.record.vote = Vote::of(x_, 5, cert(x_, 5),
                           sig(0, kDomPropose, propose_preimage(x_, 5)));
  m.record.cc = cc(x_, 5);
  m.record.phi = sig(2, kDomVote, vote_preimage(m.record.vote, m.record.cc, 7));
  Bytes wire = m.serialize();
  ASSERT_TRUE(parse_message(wire).has_value());
  for (std::size_t len = 0; len < wire.size(); ++len) {
    Bytes truncated(wire.begin(), wire.begin() + static_cast<long>(len));
    EXPECT_FALSE(parse_message(truncated).has_value()) << "len=" << len;
  }
}

TEST_F(MessagesTest, CommitTruncationRejectedAtEveryLength) {
  CommitMsg m;
  m.v = 4;
  m.x = x_;
  m.cc = cc(x_, 4);
  Bytes wire = m.serialize();
  ASSERT_TRUE(parse_message(wire).has_value());
  for (std::size_t len = 0; len < wire.size(); ++len) {
    Bytes truncated(wire.begin(), wire.begin() + static_cast<long>(len));
    EXPECT_FALSE(parse_message(truncated).has_value()) << "len=" << len;
  }
}

TEST_F(MessagesTest, DecodeFromBytesRequiresFullConsumption) {
  // decode_from_bytes only borrows its buffer (the rvalue overloads of it
  // and of Decoder are deleted, so temporaries cannot dangle) and must
  // reject buffers with trailing bytes after a successful field decode.
  Bytes wire = encode_to_bytes(x_);
  EXPECT_TRUE(decode_from_bytes<Value>(wire).has_value());
  wire.push_back(0xab);
  EXPECT_FALSE(decode_from_bytes<Value>(wire).has_value());
  Bytes truncated(wire.begin(), wire.begin() + 2);
  EXPECT_FALSE(decode_from_bytes<Value>(truncated).has_value());
}

TEST_F(MessagesTest, AbsurdVoteCountRejected) {
  Encoder enc;
  enc.u8(net::tags::kCertReq);
  enc.u64(6);
  x_.encode(enc);
  enc.u32(1'000'000);  // claims a million votes
  Bytes wire = std::move(enc).take();
  EXPECT_FALSE(parse_message(wire).has_value());
}

// --- Parameterized fuzz: random bit flips never crash the parser ------------------

class ParserFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParserFuzz, MutatedMessagesNeverCrash) {
  auto keys = std::make_shared<const crypto::KeyStore>(3, 8);
  Value x = Value::of_string("value-x");
  CommitMsg m;
  m.v = 4;
  m.x = x;
  m.cc.x = x;
  m.cc.v = 4;
  for (ProcessId p = 0; p < 5; ++p) {
    m.cc.sigs.push_back(SignatureEntry{
        p, crypto::Signer(keys, p).sign(kDomAck, ack_preimage(x, 4))});
  }
  Bytes wire = m.serialize();

  sim::Rng rng(GetParam());
  for (int iter = 0; iter < 200; ++iter) {
    Bytes mutated = wire;
    int flips = 1 + static_cast<int>(rng.next_below(8));
    for (int i = 0; i < flips; ++i) {
      std::size_t pos = static_cast<std::size_t>(rng.next_below(mutated.size()));
      mutated[pos] ^= static_cast<std::uint8_t>(1 + rng.next_below(255));
    }
    (void)parse_message(mutated);  // must not crash or hang
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz, ::testing::Range<std::uint64_t>(1, 11));

}  // namespace
}  // namespace fastbft::consensus
