#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "chaos/schedule.hpp"
#include "common/codec.hpp"
#include "consensus/messages.hpp"
#include "crypto/sha256.hpp"
#include "net/frame.hpp"
#include "net/tags.hpp"
#include "smr/batch.hpp"
#include "smr/snapshot.hpp"

/// \file corpus_gen.cpp
/// Regenerates the committed fuzz seed corpus (tests/data/fuzz/). Each
/// seed is produced by the REAL encoders, so the corpus starts on the
/// happy path of every decoder and a coverage-guided fuzzer mutates
/// outward from well-formed wire bytes instead of fishing for the frame
/// grammar from zero. Run manually after a wire-format change:
///
///   build/fuzz/corpus_gen tests/data/fuzz
///
/// and commit the result. The files are inputs to the fuzz_* harnesses
/// (see each harness header for how its bytes are interpreted) and are
/// replayed by ctest in every configuration.

namespace {

namespace fs = std::filesystem;
using namespace fastbft;

void write_seed(const fs::path& dir, const std::string& name,
                const Bytes& bytes) {
  fs::create_directories(dir);
  std::ofstream out(dir / name, std::ios::binary);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  std::printf("  %s/%s (%zu bytes)\n", dir.c_str(), name.c_str(),
              bytes.size());
}

Bytes str_bytes(std::string_view s) { return to_bytes(s); }

crypto::Signature fake_sig(std::uint8_t fill) {
  return crypto::Signature{Bytes(crypto::kSignatureSize, fill)};
}

consensus::ProgressCert sample_cert() {
  consensus::ProgressCert cert;
  cert.acks.push_back(consensus::SignatureEntry{0, fake_sig(0xa0)});
  cert.acks.push_back(consensus::SignatureEntry{2, fake_sig(0xa2)});
  return cert;
}

Value sample_batch() {
  return smr::encode_batch({smr::Command::put("key", "value", 7, 1),
                            smr::Command::cas("key", "value", "next", 7, 2),
                            smr::Command::get("key", 8, 1)});
}

void gen_message(const fs::path& root) {
  const fs::path dir = root / "fuzz_message";

  consensus::ProposeMsg propose;
  propose.v = 3;
  propose.x = sample_batch();
  propose.sigma = sample_cert();
  propose.tau = fake_sig(0x11);
  write_seed(dir, "propose", propose.serialize());

  consensus::AckMsg ack;
  ack.v = 3;
  ack.x = sample_batch();
  write_seed(dir, "ack", ack.serialize());

  consensus::AckSigMsg acksig;
  acksig.v = 4;
  acksig.x = Value::of_string("x");
  acksig.phi_ack = fake_sig(0x22);
  write_seed(dir, "acksig", acksig.serialize());

  consensus::CommitMsg commit;
  commit.v = 4;
  commit.x = Value::of_string("x");
  commit.cc.x = commit.x;
  commit.cc.v = 4;
  commit.cc.sigs.push_back(consensus::SignatureEntry{1, fake_sig(0x31)});
  commit.cc.sigs.push_back(consensus::SignatureEntry{3, fake_sig(0x33)});
  write_seed(dir, "commit", commit.serialize());

  consensus::VoteMsg vote;
  vote.v = 5;
  vote.record.voter = 2;
  vote.record.vote = consensus::Vote::of(Value::of_string("x"), 4,
                                         sample_cert(), fake_sig(0x44));
  vote.record.phi = fake_sig(0x55);
  write_seed(dir, "vote", vote.serialize());

  consensus::VoteMsg nil_vote;
  nil_vote.v = 5;
  nil_vote.record.voter = 1;
  nil_vote.record.vote = consensus::Vote::nil();
  nil_vote.record.phi = fake_sig(0x56);
  write_seed(dir, "vote_nil", nil_vote.serialize());

  consensus::CertReqMsg certreq;
  certreq.v = 5;
  certreq.x = Value::of_string("x");
  certreq.votes.push_back(vote.record);
  certreq.votes.push_back(nil_vote.record);
  write_seed(dir, "certreq", certreq.serialize());

  consensus::CertAckMsg certack;
  certack.v = 5;
  certack.x = Value::of_string("x");
  certack.phi_ca = fake_sig(0x66);
  write_seed(dir, "certack", certack.serialize());

  // SMR_WRAPPED envelope around the propose — the nested view-aliasing
  // decode path (fuzz_message exercise_wrapped).
  Encoder enc;
  enc.u8(net::tags::kSmrWrapped);
  enc.u32(0);   // group
  enc.u64(9);   // slot
  enc.u64(7);   // watermark
  enc.u64(1);   // snapshot floor
  enc.bytes(propose.serialize());
  write_seed(dir, "wrapped_propose", std::move(enc).take());

  // Truncated propose: a well-formed prefix that must decode to nullopt.
  Bytes trunc = propose.serialize();
  trunc.resize(trunc.size() / 2);
  write_seed(dir, "propose_truncated", trunc);
}

void gen_frame(const fs::path& root) {
  const fs::path dir = root / "fuzz_frame";
  net::FrameWriter writer;

  // Harness input = 1 selector byte + stream. Selector 0x03: 3-byte
  // chunks under the 4 KiB ceiling — torn reads everywhere.
  Bytes stream;
  stream.push_back(0x03);
  net::Handshake hs{1, 4};
  Bytes hs_frame = *writer.frame(hs.encode());
  stream.insert(stream.end(), hs_frame.begin(), hs_frame.end());
  consensus::AckMsg ack;
  ack.v = 2;
  ack.x = Value::of_string("x");
  Bytes msg_frame = *writer.frame(ack.serialize());
  stream.insert(stream.end(), msg_frame.begin(), msg_frame.end());
  Bytes heartbeat = *writer.frame(ByteView());
  stream.insert(stream.end(), heartbeat.begin(), heartbeat.end());
  write_seed(dir, "handshake_ack_heartbeat", stream);

  // Selector 0x10: 64-byte ceiling, whole-buffer feed; the 512-byte
  // length header must flip the reader into its sticky error state.
  Bytes oversize;
  oversize.push_back(0x10);
  net::FrameHeader header;
  net::encode_frame_header(512, header);
  oversize.insert(oversize.end(), header.begin(), header.end());
  oversize.insert(oversize.end(), 16, 0xee);
  write_seed(dir, "oversize_header", oversize);

  // Partial tail: a valid handshake frame followed by a torn header.
  Bytes partial;
  partial.push_back(0x05);
  partial.insert(partial.end(), hs_frame.begin(), hs_frame.end());
  partial.push_back(0x02);  // 2 of 4 header bytes, then EOF
  partial.push_back(0x00);
  write_seed(dir, "partial_tail", partial);
}

void gen_snapshot(const fs::path& root) {
  const fs::path dir = root / "fuzz_snapshot";

  smr::Snapshot snap;
  snap.applied_below = 5;
  snap.applied_commands = 12;
  snap.kv_state = str_bytes("serialized-kv-state-bytes");
  snap.applied_ids.push_back({{7, 1}, 3});
  snap.applied_ids.push_back({{7, 2}, 4});
  Bytes body = snap.encode();
  write_seed(dir, "snapshot_encoded", body);

  // Reassembly script reaching the verified-install path: the real
  // digest, both chunk halves, from two distinct senders (threshold 2 in
  // the harness). Field order mirrors fuzz_snapshot's Decoder reads.
  crypto::Digest digest = crypto::sha256(body);
  Bytes digest_bytes(digest.begin(), digest.end());
  std::vector<Bytes> chunks = split_chunks(body, 64);
  Encoder enc;
  for (std::uint8_t sender = 0; sender < 2; ++sender) {
    for (std::size_t i = 0; i < chunks.size(); ++i) {
      enc.u8(sender);
      enc.u8(4);  // applied_below - 1 (harness adds 1 after % 16)
      enc.bytes(digest_bytes);
      enc.u8(static_cast<std::uint8_t>(i));
      enc.u8(static_cast<std::uint8_t>(chunks.size()));
      enc.bytes(chunks[i]);
      enc.u8(0);  // next_apply 1
    }
  }
  write_seed(dir, "reassembly_quorum", std::move(enc).take());

  // Same script shape with a corrupted digest: must never verify.
  Encoder bad;
  bad.u8(0);
  bad.u8(4);
  Bytes wrong = digest_bytes;
  wrong[0] ^= 0xff;
  bad.bytes(wrong);
  bad.u8(0);
  bad.u8(1);
  bad.bytes(body);
  bad.u8(0);
  write_seed(dir, "reassembly_bad_digest", std::move(bad).take());
}

void gen_schedule(const fs::path& root) {
  const fs::path dir = root / "fuzz_schedule";

  chaos::Schedule sched = chaos::generate_schedule(42);
  write_seed(dir, "generated_42", str_bytes(sched.to_hex()));

  chaos::Schedule rich = chaos::generate_schedule(7);
  rich.faults.push_back({chaos::FaultEvent::Kind::Crash, 1000, 2, 0, 0, {}});
  rich.faults.push_back(
      {chaos::FaultEvent::Kind::PartitionStart, 2000, 0, 0, 0b0011, {}});
  rich.faults.push_back(
      {chaos::FaultEvent::Kind::PartitionHeal, 3000, 0, 0, 0, {}});
  write_seed(dir, "with_events", str_bytes(rich.to_hex()));

  // Truncated hex: decodes to nullopt, must not crash.
  std::string hex = sched.to_hex();
  write_seed(dir, "truncated",
             str_bytes(std::string_view(hex).substr(0, hex.size() / 3)));
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: corpus_gen <corpus root dir>\n");
    return 2;
  }
  const fs::path root(argv[1]);
  gen_message(root);
  gen_frame(root);
  gen_snapshot(root);
  gen_schedule(root);
  return 0;
}
