#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

/// \file driver_main.cpp
/// Standalone driver for the fuzz/ harnesses, used whenever libFuzzer is
/// unavailable (gcc builds, local dev, the ctest corpus-replay tests).
/// Links against the same LLVMFuzzerTestOneInput entry point the
/// coverage-guided build uses, so one harness source serves both modes.
///
/// Usage:  fuzz_x [-runs=N] [-max_len=N] [-seed=N] [corpus file|dir]...
///
///  * Every file argument (and every regular file inside a directory
///    argument) is replayed through the harness once. A crash here is a
///    regression: committed corpus inputs must stay green forever.
///  * -runs=N additionally feeds N pseudo-random buffers (xorshift64,
///    deterministic for a given -seed) of up to -max_len bytes. This is
///    the poor man's fuzz budget for environments without libFuzzer —
///    no coverage feedback, but it keeps the decode surfaces exercised
///    with hostile bytes on every CI run.
///
/// Exit status 0 = every input survived. Any crash aborts the process,
/// which ctest reports as a failure.

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace {

std::uint64_t g_rng_state = 0x9e3779b97f4a7c15ull;

std::uint64_t next_rand() {
  std::uint64_t x = g_rng_state;
  x ^= x << 13;
  x ^= x >> 7;
  x ^= x << 17;
  g_rng_state = x;
  return x;
}

bool run_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "fuzz driver: cannot open %s\n", path.c_str());
    return false;
  }
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  LLVMFuzzerTestOneInput(reinterpret_cast<const std::uint8_t*>(bytes.data()),
                         bytes.size());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t runs = 0;
  std::size_t max_len = 4096;
  std::size_t replayed = 0;
  bool ok = true;

  std::vector<std::string> inputs;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("-runs=", 0) == 0) {
      runs = std::strtoull(arg.c_str() + 6, nullptr, 10);
    } else if (arg.rfind("-max_len=", 0) == 0) {
      max_len = std::strtoull(arg.c_str() + 9, nullptr, 10);
    } else if (arg.rfind("-seed=", 0) == 0) {
      g_rng_state = std::strtoull(arg.c_str() + 6, nullptr, 10) | 1;
    } else if (!arg.empty() && arg[0] == '-') {
      // Ignore unknown flags so libFuzzer-style invocations don't trip
      // the replay driver.
    } else {
      inputs.push_back(arg);
    }
  }

  for (const std::string& input : inputs) {
    std::filesystem::path path(input);
    std::error_code ec;
    if (std::filesystem::is_directory(path, ec)) {
      std::vector<std::filesystem::path> files;
      for (const auto& entry : std::filesystem::directory_iterator(path)) {
        if (entry.is_regular_file()) files.push_back(entry.path());
      }
      // Sorted so replay order (and thus any crash) is deterministic.
      std::sort(files.begin(), files.end());
      for (const auto& file : files) {
        ok = run_file(file) && ok;
        ++replayed;
      }
    } else if (std::filesystem::is_regular_file(path, ec)) {
      ok = run_file(path) && ok;
      ++replayed;
    } else {
      std::fprintf(stderr, "fuzz driver: no such input %s\n", input.c_str());
      ok = false;
    }
  }

  std::vector<std::uint8_t> buf;
  for (std::uint64_t i = 0; i < runs; ++i) {
    std::size_t len = max_len == 0 ? 0 : next_rand() % (max_len + 1);
    buf.resize(len);
    for (std::size_t j = 0; j < len; ++j) {
      buf[j] = static_cast<std::uint8_t>(next_rand());
    }
    LLVMFuzzerTestOneInput(buf.data(), buf.size());
  }

  std::printf("fuzz driver: %zu corpus input(s) replayed, %llu random run(s)\n",
              replayed, static_cast<unsigned long long>(runs));
  return ok ? 0 : 1;
}
