#include <cstdint>

#include "common/codec.hpp"
#include "engine/catchup.hpp"
#include "smr/snapshot.hpp"

/// \file fuzz_snapshot.cpp
/// Fuzzes the full-state-transfer receive path: smr::Snapshot::decode
/// over raw bytes, and CatchUpPolicy::add_snapshot_chunk reassembly
/// driven by an adversarial chunk stream.
///
/// The input is interpreted as a script of SNAPSHOT_RESPONSE fields
/// (sender, boundary, digest, index/count, chunk bytes) decoded with the
/// project codec, so the fuzzer controls exactly what a Byzantine peer
/// controls: inconsistent counts, out-of-range indices, digest
/// mismatches, duplicate and interleaved chunks from many senders.
///
/// Contract under test: reassembly never crashes, never trusts a body
/// whose hash mismatches the vouched digest, and anything
/// Snapshot::decode accepts re-encodes byte-identically (canonical
/// encoding round-trip).

namespace {

using fastbft::Bytes;
using fastbft::ByteView;
using fastbft::Decoder;

void exercise_decode(ByteView payload) {
  auto snap = fastbft::smr::Snapshot::decode(payload.to_bytes());
  if (!snap) return;
  Bytes wire = snap->encode();
  auto again = fastbft::smr::Snapshot::decode(wire);
  if (!again || !(*again == *snap)) __builtin_trap();
}

void exercise_reassembly(ByteView payload) {
  // f+1 = 2 vouchers over a 4-replica cluster: the smallest real shape,
  // so the voucher-quorum logic is reachable within a few script steps.
  fastbft::engine::CatchUpPolicy policy(/*threshold=*/2, /*cluster_size=*/4,
                                        /*snapshot_chunk_bytes=*/64);
  Decoder dec(payload);
  // Bounded steps: each iteration consumes >= 1 byte via bytes_view, and
  // the loop exits when the script runs dry.
  for (int step = 0; step < 64 && dec.ok(); ++step) {
    fastbft::ProcessId from = dec.u8() % 4;
    fastbft::Slot applied_below = (dec.u8() % 16) + 1;
    // Full 32 bytes of the digest are script-controlled (zero-padded /
    // truncated), so seed inputs can carry a REAL sha256 and drive the
    // reassembly all the way through the verified-install path.
    fastbft::crypto::Digest digest{};
    Bytes digest_bytes = dec.bytes();
    for (std::size_t i = 0; i < digest.size() && i < digest_bytes.size(); ++i) {
      digest[i] = digest_bytes[i];
    }
    std::uint32_t index = dec.u8();
    std::uint32_t count = dec.u8();
    Bytes chunk = dec.bytes();
    fastbft::Slot next_apply = (dec.u8() % 16) + 1;
    if (!dec.ok()) break;
    auto verified = policy.add_snapshot_chunk(from, applied_below, digest,
                                              index, count, std::move(chunk),
                                              next_apply);
    if (verified) {
      // A verified snapshot's body must hash to the vouched digest —
      // that is the whole point of the digest check.
      if (fastbft::crypto::sha256(verified->body) != verified->digest) {
        __builtin_trap();
      }
    }
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  ByteView payload(data, size);
  exercise_decode(payload);
  exercise_reassembly(payload);
  return 0;
}
