#include <cstdint>

#include "net/frame.hpp"

/// \file fuzz_frame.cpp
/// Fuzzes the TCP framing layer: FrameReader fed the input as a hostile
/// byte stream, plus the handshake codec over each recovered frame.
///
/// The input's first byte picks a chunking pattern so torn reads across
/// frame boundaries — the case the recycled-buffer compaction logic
/// exists for — are exercised, not just whole-buffer feeds. A small
/// max_frame_bytes ceiling keeps the oversize-header rejection path hot
/// (with the production 4 MiB ceiling nearly every random length header
/// would be accepted and the fuzzer would just append bytes).
///
/// Contract under test: the reader never reads out of bounds, never
/// yields a frame longer than the ceiling, terminates (error() sticks),
/// and Handshake::decode is total over arbitrary payloads.

namespace {

using fastbft::ByteView;
using fastbft::net::FrameReader;
using fastbft::net::Handshake;

void exercise_stream(ByteView stream, std::size_t chunk, std::size_t ceiling) {
  FrameReader reader(ceiling);
  std::size_t offset = 0;
  bool first = true;
  while (offset < stream.size()) {
    std::size_t n = chunk == 0 ? stream.size() : chunk;
    ByteView piece = stream.sub(offset, n);
    offset += piece.size();
    if (!reader.feed(piece)) break;
    while (auto frame = reader.next()) {
      if (frame->size() > ceiling) __builtin_trap();
      if (first) {
        // Connection-opening frame: must be a handshake. decode() is
        // total; whichever Result comes back, encoding a decoded-Ok
        // handshake must re-decode Ok (round-trip).
        Handshake hs;
        if (Handshake::decode(*frame, hs) == Handshake::Result::Ok) {
          Handshake again;
          if (Handshake::decode(hs.encode(), again) != Handshake::Result::Ok) {
            __builtin_trap();
          }
        }
        first = false;
      }
    }
    if (reader.error()) {
      // Errors are sticky: further feeds/nexts must stay inert.
      (void)reader.feed(stream.sub(0, 8));
      if (reader.next().has_value()) __builtin_trap();
      break;
    }
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size == 0) return 0;
  ByteView input(data, size);
  // First byte steers chunking; the rest is the stream.
  std::uint8_t selector = input[0];
  ByteView stream = input.sub(1, input.size() - 1);
  // 1..16-byte chunks exercise torn headers/payloads; 0 = one big feed.
  std::size_t chunk = selector & 0x0f;
  // Two ceilings: a tiny one (64 B) that makes oversize rejection common,
  // and a moderate one (4 KiB) under which realistic frames reassemble.
  std::size_t ceiling = (selector & 0x10) ? 64 : 4096;
  exercise_stream(stream, chunk, ceiling);
  return 0;
}
