#include <cstdint>
#include <string>
#include <string_view>

#include "chaos/schedule.hpp"

/// \file fuzz_schedule.cpp
/// Fuzzes the chaos-schedule codec: the hex grammar users paste on the
/// chaos_fuzz command line (`--replay <hex>`), and the binary decode
/// underneath it. A Schedule drives the deterministic chaos harness, so
/// a decode that accepts garbage would turn "replay this counterexample"
/// into undefined behaviour two layers later.
///
/// Two interpretations of each input:
///
///   1. The raw bytes as a hex STRING (what a user actually pastes) —
///      from_hex + Schedule::from_hex must be total over arbitrary text.
///   2. The raw bytes hex-ENCODED and then decoded — this path always
///      reaches the binary Schedule::decode (interpretation 1 dies at
///      non-hex characters for most random inputs).
///
/// Whatever decodes must round-trip: to_hex -> from_hex -> equal fields
/// (spot-checked via re-encoding to the identical hex string, since
/// encoding is canonical).

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  std::string_view text(reinterpret_cast<const char*>(data), size);
  if (auto sched = fastbft::chaos::Schedule::from_hex(text)) {
    std::string hex = sched->to_hex();
    auto again = fastbft::chaos::Schedule::from_hex(hex);
    if (!again || again->to_hex() != hex) __builtin_trap();
  }

  std::string encoded = fastbft::to_hex(fastbft::ByteView(data, size));
  if (auto sched = fastbft::chaos::Schedule::from_hex(encoded)) {
    std::string hex = sched->to_hex();
    auto again = fastbft::chaos::Schedule::from_hex(hex);
    if (!again || again->to_hex() != hex) __builtin_trap();
  }
  return 0;
}
