#include <cstdint>

#include "consensus/messages.hpp"
#include "net/tags.hpp"
#include "smr/batch.hpp"

/// \file fuzz_message.cpp
/// Fuzzes the protocol-message decode surface: every byte of `data` is
/// treated as one untrusted wire payload, exactly as a replica receives
/// it from a (possibly Byzantine) peer.
///
/// Three nested layers are exercised, mirroring the real inbound path:
///
///   1. consensus::parse_message over the raw payload — the seven core
///      protocol tags, each with certificates/signature vectors inside.
///   2. The SMR_WRAPPED envelope decode (tag, group, slot, watermark,
///      snapshot floor, length-prefixed inner) with the inner payload
///      parsed as a consensus message THROUGH THE VIEW — no copy — which
///      is the aliasing pattern SlotMux::on_wrapped relies on.
///   3. smr::decode_batch over any Value a ProposeMsg/AckMsg carried,
///      the batch layer a decided value flows into.
///
/// The contract under test: decoding is total. Any input either yields a
/// well-formed object or nullopt; no crash, no UB, no unbounded
/// allocation. Round-trip: anything that parses must re-serialize and
/// re-parse equal (checked for parse_message, whose Message supports ==
/// per alternative).

namespace {

using fastbft::ByteView;
using fastbft::Decoder;

void exercise_batch(const fastbft::Value& value) {
  auto batch = fastbft::smr::decode_batch(value);
  if (!batch) return;
  // Re-encoding a decoded batch must succeed (encode asserts nothing
  // about command contents) unless it was empty.
  if (!batch->empty()) {
    (void)fastbft::smr::encode_batch(*batch);
  }
}

void exercise_consensus(ByteView payload) {
  auto msg = fastbft::consensus::parse_message(payload);
  if (!msg) return;
  (void)fastbft::consensus::message_view(*msg);
  // Whatever parsed must round-trip: serialize, re-parse, compare.
  std::visit(
      [](const auto& m) {
        fastbft::Bytes wire = m.serialize();
        auto again = fastbft::consensus::parse_message(wire);
        if (!again) __builtin_trap();
        const auto* same = std::get_if<std::decay_t<decltype(m)>>(&*again);
        if (same == nullptr) __builtin_trap();
      },
      *msg);
  if (const auto* propose =
          std::get_if<fastbft::consensus::ProposeMsg>(&*msg)) {
    exercise_batch(propose->x);
  } else if (const auto* ack =
                 std::get_if<fastbft::consensus::AckMsg>(&*msg)) {
    exercise_batch(ack->x);
  }
}

/// SMR_WRAPPED{tag, group, slot, watermark, snap_floor, inner}: decode
/// the envelope the way SlotMux::on_wrapped does — the inner payload is a
/// ByteView aliasing the outer buffer — then parse the inner bytes as a
/// consensus message through that view.
void exercise_wrapped(ByteView payload) {
  Decoder dec(payload);
  std::uint8_t tag = dec.u8();
  (void)dec.u32();  // group
  (void)dec.u64();  // slot
  (void)dec.u64();  // watermark
  (void)dec.u64();  // snapshot floor
  ByteView inner = dec.bytes_view();
  if (!dec.ok() || !dec.at_end() || tag != fastbft::net::tags::kSmrWrapped) {
    return;
  }
  exercise_consensus(inner);
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  ByteView payload(data, size);
  exercise_consensus(payload);
  exercise_wrapped(payload);
  return 0;
}
