#include <cstdio>

#include "net/tags.hpp"
#include "runtime/cluster.hpp"
#include "trace/trace.hpp"

/// Reproduces the paper's protocol figures from real executions:
///   Figure 1a — a correct leader's fast path (propose -> ack -> decide);
///   Figure 1b — the view change (vote -> CertReq -> CertAck), then the
///               re-proposal;
///   Figure 5  — the generalized protocol's slow path (ack signatures ->
///               Commit) when more than t processes have failed.
///
/// Run: ./build/examples/message_flow

using namespace fastbft;

namespace {

runtime::ClusterOptions lockstep(consensus::QuorumConfig cfg) {
  runtime::ClusterOptions options;
  options.cfg = cfg;
  options.net.delta = 100;
  options.net.min_delay = 100;
  return options;
}

std::vector<Value> inputs(std::uint32_t n) {
  std::vector<Value> v;
  for (std::uint32_t i = 0; i < n; ++i) {
    v.push_back(Value::of_string("x" + std::to_string(i)));
  }
  return v;
}

void figure_1a() {
  std::printf("--- Figure 1a: fast path, n = 4, f = t = 1 (vanilla mode) "
              "---\n");
  auto options = lockstep(consensus::QuorumConfig::create(4, 1, 1));
  options.node.replica.slow_path = false;
  runtime::Cluster cluster(options, inputs(4));
  trace::TraceRecorder recorder(cluster.network());
  cluster.start();
  cluster.run_until_all_correct_decided(10'000);

  trace::RenderOptions render;
  render.tags = {net::tags::kPropose, net::tags::kAck};
  std::printf("%s", trace::render_sequence(recorder, 4, render).c_str());
  std::printf("=> every process holds %u acks for (x0, view 1) at t=200: "
              "decide after 2 message delays\n\n",
              cluster.config().fast_quorum());
}

void figure_1b() {
  std::printf("--- Figure 1b: view change, n = 4, f = t = 1, leader p0 dead "
              "---\n");
  auto options = lockstep(consensus::QuorumConfig::create(4, 1, 1));
  options.node.replica.slow_path = false;
  runtime::Cluster cluster(options, inputs(4));
  trace::TraceRecorder recorder(cluster.network());
  cluster.crash_at(0, 0);
  cluster.start();
  cluster.run_until_all_correct_decided(1'000'000);

  trace::RenderOptions render;
  render.hide_self_sends = false;  // the new leader's vote to itself matters
  render.tags = {net::tags::kVote, net::tags::kCertReq, net::tags::kCertAck,
                 net::tags::kPropose, net::tags::kAck};
  std::printf("%s", trace::render_sequence(recorder, 4, render).c_str());
  auto d = cluster.decision_of(1);
  std::printf("=> new leader p1 collected votes, certified \"%s\" with f+1 "
              "CertAcks and re-proposed; decided in view %llu\n\n",
              d->value.to_string().c_str(),
              static_cast<unsigned long long>(d->view));
}

void figure_5() {
  std::printf("--- Figure 5: slow path, n = 7, f = 2, t = 1, two processes "
              "dead ---\n");
  auto options = lockstep(consensus::QuorumConfig::create(7, 2, 1));
  runtime::Cluster cluster(options, inputs(7));
  trace::TraceRecorder recorder(cluster.network());
  cluster.crash_at(5, 0);
  cluster.crash_at(6, 0);
  cluster.start();
  cluster.run_until_all_correct_decided(1'000'000);

  trace::RenderOptions render;
  render.tags = {net::tags::kPropose, net::tags::kAck, net::tags::kAckSig,
                 net::tags::kCommit};
  std::printf("%s", trace::render_sequence(recorder, 7, render).c_str());
  std::printf("=> only %u acks possible (< fast quorum %u), but "
              "ceil((n+f+1)/2) = %u signed acks form a commit certificate: "
              "decide after 3 delays via Commit\n",
              5u, cluster.config().fast_quorum(),
              cluster.config().commit_quorum());
}

}  // namespace

int main() {
  std::printf("message_flow: the paper's figures, regenerated from real "
              "executions\n\n");
  figure_1a();
  figure_1b();
  figure_5();
  return 0;
}
