#include <cstdio>

#include "adversary/behaviors.hpp"

/// Fault-injection tour: what each Byzantine behaviour does to the
/// protocol, and how it recovers. Four scenarios on the n = 9, f = t = 2
/// vanilla configuration (5f - 1).
///
/// Run: ./build/examples/fault_injection

using namespace fastbft;

namespace {

runtime::ClusterOptions make_options(std::uint64_t seed) {
  runtime::ClusterOptions options;
  options.cfg = consensus::QuorumConfig::create(9, 2, 2);
  options.net.delta = 100;
  options.net.min_delay = 100;
  options.net.seed = seed;
  return options;
}

std::vector<Value> make_inputs() {
  std::vector<Value> inputs;
  for (int i = 0; i < 9; ++i) {
    inputs.push_back(Value::of_string("proposal-" + std::to_string(i)));
  }
  return inputs;
}

void report(const char* title, runtime::Cluster& cluster, bool decided) {
  std::printf("%-38s -> %s", title, decided ? "decided" : "NO DECISION");
  if (decided) {
    auto d = cluster.decisions().front();
    std::printf(" \"%s\" (view %llu, %.1f delays)",
                d.value.to_string().c_str(),
                static_cast<unsigned long long>(d.view),
                cluster.max_decision_delays());
  }
  std::printf(", agreement %s\n", cluster.agreement() ? "held" : "BROKEN");
}

}  // namespace

int main() {
  std::printf("fault-injection tour: n = 9, f = t = 2 (the 5f - 1 "
              "configuration)\n\n");

  {
    // 1. Baseline.
    runtime::Cluster cluster(make_options(1), make_inputs());
    cluster.start();
    bool ok = cluster.run_until_all_correct_decided(1'000'000);
    report("no faults", cluster, ok);
  }
  {
    // 2. Two processes crash at Delta — the paper's T-faulty shape; the
    // fast path is unaffected.
    runtime::Cluster cluster(make_options(2), make_inputs());
    cluster.crash_at(4, 100);
    cluster.crash_at(8, 100);
    cluster.start();
    bool ok = cluster.run_until_all_correct_decided(1'000'000);
    report("2 crashes at Delta", cluster, ok);
  }
  {
    // 3. Dead leader: the view synchronizer times out, the view change
    // collects votes, certifies a safe value and re-proposes.
    runtime::Cluster cluster(make_options(3), make_inputs());
    cluster.crash_at(0, 0);
    cluster.start();
    bool ok = cluster.run_until_all_correct_decided(1'000'000);
    report("dead initial leader", cluster, ok);
  }
  {
    // 4. Equivocating leader backed by a promiscuous acker: the next
    // leader detects the equivocation from the conflicting signed
    // proposals, excludes the culprit's vote, and picks a safe value.
    runtime::Cluster cluster(make_options(4), make_inputs());
    cluster.replace_process(0, adversary::equivocating_leader(
                                   Value::of_string("evil-A"),
                                   Value::of_string("evil-B")));
    cluster.replace_process(5, adversary::promiscuous_acker());
    cluster.start();
    bool ok = cluster.run_until_all_correct_decided(2'000'000);
    report("equivocating leader + acker", cluster, ok);
  }
  {
    // 5. Slow path: with f = 2, t = 1 and two dead processes the fast
    // quorum is out of reach, but signed acks + commit certificates
    // deliver a 3-step decision with no view change.
    runtime::ClusterOptions options = make_options(5);
    options.cfg = consensus::QuorumConfig::create(7, 2, 1);
    std::vector<Value> all_inputs = make_inputs();
    std::vector<Value> inputs(all_inputs.begin(), all_inputs.begin() + 7);
    runtime::Cluster cluster(options, inputs);
    cluster.crash_at(5, 0);
    cluster.crash_at(6, 0);
    cluster.start();
    bool ok = cluster.run_until_all_correct_decided(1'000'000);
    std::printf("%-38s -> %s via %s (%.1f delays), agreement %s\n",
                "slow path (n=7, f=2, t=1, 2 dead)",
                ok ? "decided" : "NO DECISION",
                cluster.decisions().front().via_slow_path ? "slow path"
                                                          : "fast path",
                cluster.max_decision_delays(),
                cluster.agreement() ? "held" : "BROKEN");
  }

  std::printf("\nall scenarios: agreement must hold and liveness must "
              "return once a correct leader is in charge.\n");
  return 0;
}
