#include <cstdio>

#include "runtime/cluster.hpp"

/// Quickstart: the paper's headline configuration — four processes,
/// tolerating one Byzantine fault, deciding in two message delays.
///
/// Build & run:
///   cmake -B build -G Ninja && cmake --build build
///   ./build/examples/quickstart

using namespace fastbft;

int main() {
  // f = t = 1 Byzantine fault with only n = 4 processes — the minimum for
  // any partially synchronous Byzantine consensus, and this protocol is
  // still "fast" (two-step). FaB Paxos would need 6 processes for this.
  auto cfg = consensus::QuorumConfig::create(/*n=*/4, /*f=*/1, /*t=*/1);

  runtime::ClusterOptions options;
  options.cfg = cfg;
  options.net.delta = 100;      // the synchrony bound Delta, in sim ticks
  options.net.min_delay = 100;  // lock-step delivery: every hop = Delta

  // Each process proposes its own value; the view-1 leader is process 0.
  std::vector<Value> inputs = {
      Value::of_string("apply-migration-42"),
      Value::of_string("apply-migration-43"),
      Value::of_string("rollback-migration-41"),
      Value::of_string("apply-migration-42"),
  };

  runtime::Cluster cluster(options, inputs);
  cluster.start();

  if (!cluster.run_until_all_correct_decided(/*limit=*/100'000)) {
    std::printf("no decision within the time limit\n");
    return 1;
  }

  std::printf("all %u processes decided:\n", cfg.n);
  for (const auto& d : cluster.decisions()) {
    std::printf("  p%u -> \"%s\"  (view %llu, t = %lld ticks = %.1f message "
                "delays)\n",
                d.pid, d.value.to_string().c_str(),
                static_cast<unsigned long long>(d.view),
                static_cast<long long>(d.time),
                static_cast<double>(d.time) / 100.0);
  }
  std::printf("agreement: %s, two-step: %s\n",
              cluster.agreement() ? "yes" : "NO (bug!)",
              cluster.max_decision_delays() == 2.0 ? "yes" : "no");
  std::printf("\nnetwork traffic:\n%s",
              cluster.network().stats().summary().c_str());
  return 0;
}
