#include <cstdio>

#include "smr/service.hpp"

/// Quickstart: the replicated KV service through the unified client API.
/// Four replicas tolerating one Byzantine fault (the paper's headline
/// configuration, two message delays per decision) serve typed
/// put/get/cas/del operations; every result the client sees is vouched
/// for by f + 1 distinct signed replica replies — Byzantine-verified,
/// reads included, because reads travel through the log too.
///
/// Build & run:
///   cmake -B build -G Ninja && cmake --build build
///   ./build/examples/quickstart

using namespace fastbft;
using namespace std::chrono_literals;

int main() {
  // The fluent config stands up the whole cluster: replicas, simulated
  // network, key material, and one client session.
  auto config = smr::ServiceConfig{}
                    .with_cluster(/*n=*/4, /*f=*/1, /*t=*/1)
                    .with_sessions(1)
                    .with_batch(4)
                    .with_pipeline_depth(2);
  auto service = smr::make_sim_service(config);
  service->start();
  smr::ClientSession& session = service->session(0);

  auto show = [&](const char* what, smr::Future<smr::Reply> future) {
    if (!service->await(future, 5'000ms)) {
      std::printf("  %-28s -> (no quorum within budget)\n", what);
      return smr::Reply{};
    }
    const smr::Reply& reply = future.value();
    std::printf("  %-28s -> slot %-3llu ok=%s found=%s value=\"%s\"\n", what,
                static_cast<unsigned long long>(reply.slot),
                reply.result.ok ? "yes" : "no",
                reply.result.found ? "yes" : "no",
                reply.result.value.c_str());
    return reply;
  };

  std::printf("replicated KV over %u replicas (f = t = 1), one client "
              "session:\n",
              service->quorum().n);
  show("put account-7 = 100", session.put("account-7", "100"));
  show("get account-7", session.get("account-7"));
  show("cas account-7: 100 -> 250", session.cas("account-7", "100", "250"));
  show("cas account-7: 100 -> 999", session.cas("account-7", "100", "999"));
  show("get account-7", session.get("account-7"));
  show("del account-7", session.del("account-7"));
  show("get account-7", session.get("account-7"));

  bool converged = service->await_applied(7, 5'000ms);
  service->stop();
  std::printf("\n%llu requests completed, each on f + 1 = %u matching "
              "signed replies\n",
              static_cast<unsigned long long>(session.completed()),
              service->quorum().f + 1);
  std::printf("all replicas applied the full log: %s, stores agree: %s\n",
              converged ? "yes" : "no",
              service->stores_agree() ? "yes" : "NO (bug!)");
  std::printf("(the second CAS failed on purpose: its expectation was "
              "stale — the failure itself is quorum-verified)\n");
  return service->stores_agree() && converged ? 0 : 1;
}
