#include <cstdio>

#include "smr/smr_node.hpp"

/// Replicated key-value store: the classic SMR application the paper's
/// introduction motivates. Seven replicas (f = 2, t = 1), a client stream
/// of PUT/DEL commands, one replica crashing mid-stream — all surviving
/// replicas end with byte-identical stores.
///
/// Run: ./build/examples/kv_replication

using namespace fastbft;
using smr::Command;

int main() {
  auto cfg = consensus::QuorumConfig::create(/*n=*/7, /*f=*/2, /*t=*/1);

  runtime::ClusterOptions options;
  options.cfg = cfg;
  options.net.delta = 100;
  options.net.min_delay = 100;

  std::vector<smr::SmrNode*> nodes(cfg.n, nullptr);
  smr::SmrOptions smr_options;
  smr_options.max_batch = 4;
  smr_options.target_commands = 9;
  options.node_factory = [&nodes, smr_options](
                             const runtime::ProcessContext& ctx,
                             const runtime::NodeOptions&,
                             runtime::Node::DecideCallback) {
    auto node = std::make_unique<smr::SmrNode>(
        ctx, smr_options,
        [](ProcessId pid, GroupId, Slot slot,
           const std::vector<Command>& commands) {
          if (pid != 1) return;  // log one replica's view of the log
          for (const auto& cmd : commands) {
            std::printf("  p1 applied [slot %llu] %s\n",
                        static_cast<unsigned long long>(slot),
                        cmd.to_string().c_str());
          }
        });
    nodes[ctx.id] = node.get();
    return node;
  };

  runtime::Cluster cluster(options,
                           std::vector<Value>(cfg.n, Value::of_string("-")));
  cluster.crash_at(6, 700);  // one replica dies mid-stream
  cluster.start();

  // A client submits a session's worth of commands through replica 2.
  cluster.scheduler().schedule_at(0, [&] {
    std::uint64_t seq = 0;
    for (const Command& cmd : {
             Command::put("user:1:name", "alice", 1, ++seq),
             Command::put("user:1:plan", "pro", 1, ++seq),
             Command::put("user:2:name", "bob", 1, ++seq),
             Command::put("user:2:plan", "free", 1, ++seq),
             Command::put("user:1:plan", "enterprise", 1, ++seq),
             Command::del("user:2:plan", 1, ++seq),
             Command::put("user:3:name", "carol", 1, ++seq),
             Command::put("billing:cycle", "2026-06", 1, ++seq),
             Command::del("user:3:name", 1, ++seq),
         }) {
      nodes[2]->submit(cmd);
    }
  });

  std::printf("replicating 9 commands across %u replicas (replica 6 crashes "
              "at t=700)...\n",
              cfg.n);
  cluster.run_until(2'000'000);

  std::printf("\nfinal state on each surviving replica:\n");
  for (ProcessId id = 0; id < 6; ++id) {
    auto digest = nodes[id]->store().state_digest();
    std::printf("  p%u: %llu commands applied, user:1:plan=%s, digest=%s...\n",
                id,
                static_cast<unsigned long long>(nodes[id]->applied_commands()),
                nodes[id]->store().get("user:1:plan").value_or("<none>").c_str(),
                to_hex(Bytes(digest.begin(), digest.begin() + 6)).c_str());
  }

  bool converged = true;
  for (ProcessId id = 1; id < 6; ++id) {
    converged &= nodes[id]->store().state_digest() ==
                 nodes[0]->store().state_digest();
  }
  std::printf("\nreplica state machines identical: %s\n",
              converged ? "yes" : "NO (bug!)");
  return converged ? 0 : 1;
}
