#include <chrono>
#include <cstdio>

#include "runtime/threaded_cluster.hpp"
#include "smr/service.hpp"

/// The same protocol, real threads, real clock. Part 1: nine OS threads
/// (one per process), f = t = 2, two of them crashed — wall-clock time to
/// a single Byzantine-fault-tolerant decision. Part 2: the full client
/// API over the threaded runtime — two smr::ClientSessions drive a
/// replicated KV service (typed ops, f + 1 signed-reply quorum per
/// request), and a replica crash mid-run is absorbed by session failover
/// plus wall-clock view change.
///
/// Run: ./build/examples/realtime_quickstart

using namespace fastbft;
using namespace std::chrono;
using namespace std::chrono_literals;

namespace {

int run_threaded_service() {
  auto config = smr::ServiceConfig{}
                    .with_cluster(/*n=*/6, /*f=*/1, /*t=*/1)
                    .with_sessions(2)
                    .with_batch(8)
                    .with_pipeline_depth(8)
                    .with_rotating_leaders()
                    .with_window(8)
                    .with_first_gateway(1);
  auto service = smr::make_threaded_service(config);

  auto begin = steady_clock::now();
  service->start();

  // Closed-loop warm-up: both sessions stream puts, windowed at 8.
  constexpr std::uint64_t kPerSession = 60;
  std::vector<smr::Future<smr::Reply>> futures;
  for (std::uint32_t s = 0; s < 2; ++s) {
    for (std::uint64_t i = 1; i <= kPerSession; ++i) {
      futures.push_back(service->session(s).put(
          "account-" + std::to_string(i % 16),
          "balance-" + std::to_string(s * 1000 + i)));
    }
  }
  auto all_ready = [&] {
    for (const auto& f : futures) {
      if (!f.ready()) return false;
    }
    return true;
  };
  if (!service->run_until(all_ready, 30'000ms)) {
    std::printf("threaded service made no progress — something is wrong\n");
    return 1;
  }

  // Crash session 0's gateway mid-run: its in-flight requests fail over
  // to the next replica; the crashed process's slots are rescued by
  // wall-clock view change underneath.
  service->crash(1);
  smr::Future<smr::Reply> through_crash =
      service->session(0).put("after-crash", "survived");
  if (!service->await(through_crash, 30'000ms)) {
    std::printf("request through the crashed gateway never completed\n");
    return 1;
  }
  smr::Future<smr::Reply> read = service->session(1).get("after-crash");
  bool read_done = service->await(read, 30'000ms);
  bool converged = service->await_applied(2 * kPerSession + 2, 30'000ms);
  auto elapsed = duration_cast<microseconds>(steady_clock::now() - begin);
  service->stop();

  if (!read_done || !read.value().result.found) {
    std::printf("the other session cannot see the write — bug\n");
    return 1;
  }
  std::printf("\nreplicated KV service over OS threads (n = 6, depth = 8, "
              "2 sessions, gateway p1 crashed mid-run):\n");
  for (std::uint32_t s = 0; s < 2; ++s) {
    std::printf("  session %u: %llu completed, %llu failovers\n", s,
                static_cast<unsigned long long>(
                    service->session(s).completed()),
                static_cast<unsigned long long>(
                    service->session(s).failovers()));
  }
  std::printf("cross-session read: \"%s\" (quorum-verified), stores agree: "
              "%s | wall-clock: %lld us\n",
              read.value().result.value.c_str(),
              service->stores_agree() && converged ? "yes" : "NO (bug!)",
              static_cast<long long>(elapsed.count()));
  std::printf("(every completion carries f + 1 matching signed replies; "
              "the crashed gateway's requests were resubmitted through "
              "the next replica by the session's per-request timers)\n");
  return 0;
}

}  // namespace

int main() {
  auto cfg = consensus::QuorumConfig::create(/*n=*/9, /*f=*/2, /*t=*/2);

  std::vector<Value> inputs;
  for (std::uint32_t i = 0; i < cfg.n; ++i) {
    inputs.push_back(Value::of_string("cmd-" + std::to_string(i)));
  }

  runtime::ThreadedCluster cluster(cfg, inputs);
  cluster.crash(4);
  cluster.crash(8);

  auto begin = steady_clock::now();
  cluster.start();
  bool decided = cluster.wait_all_correct_decided(seconds(10));
  auto elapsed = duration_cast<microseconds>(steady_clock::now() - begin);

  if (!decided) {
    std::printf("no decision within 10s — something is wrong\n");
    return 1;
  }

  std::printf("9 processes (2 crashed), f = t = 2, real threads:\n");
  for (const auto& [pid, record] : cluster.decisions()) {
    std::printf("  p%u decided \"%s\" in view %llu\n", pid,
                record.value.to_string().c_str(),
                static_cast<unsigned long long>(record.view));
  }
  std::printf("agreement: %s\n", cluster.agreement() ? "yes" : "NO (bug!)");
  std::printf("wall-clock time to full decision: %lld us (%llu messages "
              "delivered)\n",
              static_cast<long long>(elapsed.count()),
              static_cast<unsigned long long>(cluster.delivered_messages()));
  std::printf("\n(the two-message-delay structure is the same as in the\n"
              "simulator; here a \"delay\" is an in-process queue hop of a\n"
              "few microseconds instead of a scripted Delta)\n");

  return run_threaded_service();
}
