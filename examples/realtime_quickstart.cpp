#include <chrono>
#include <cstdio>

#include "runtime/threaded_cluster.hpp"
#include "runtime/threaded_smr_cluster.hpp"

/// The same protocol, real threads, real clock. Part 1: nine OS threads
/// (one per process), f = t = 2, two of them crashed — wall-clock time to
/// a single Byzantine-fault-tolerant decision. Part 2: the full pipelined
/// SMR engine on the threaded runtime — a replicated KV log with leader
/// rotation and wall-clock view change surviving a mid-run crash.
///
/// Run: ./build/examples/realtime_quickstart

using namespace fastbft;
using namespace std::chrono;

namespace {

int run_threaded_smr() {
  auto cfg = consensus::QuorumConfig::create(/*n=*/6, /*f=*/1, /*t=*/1);
  runtime::ThreadedSmrClusterOptions options;
  options.smr.max_batch = 8;
  options.smr.pipeline_depth = 8;
  options.smr.rotate_leaders = true;
  options.smr.target_commands = 200;
  runtime::ThreadedSmrCluster cluster(cfg, options);

  for (std::uint64_t i = 1; i <= 200; ++i) {
    cluster.submit(smr::Command::put("account-" + std::to_string(i % 16),
                                     "balance-" + std::to_string(i), 1, i));
  }

  auto begin = steady_clock::now();
  cluster.start();
  if (!cluster.wait_applied(40, seconds(20))) {
    std::printf("threaded SMR made no progress — something is wrong\n");
    return 1;
  }
  cluster.crash(2);  // initial leader of slots 3, 9, 15, ... under rotation
  bool done = cluster.wait_applied(200, seconds(30));
  auto elapsed = duration_cast<microseconds>(steady_clock::now() - begin);
  cluster.stop();

  if (!done) {
    std::printf("threaded SMR stalled after the crash — something is "
                "wrong\n");
    return 1;
  }
  std::printf("\npipelined SMR over OS threads (n = 6, depth = 8, p2 "
              "crashed mid-run):\n");
  for (ProcessId id = 0; id < cfg.n; ++id) {
    if (cluster.is_faulty(id)) {
      std::printf("  p%u crashed\n", id);
      continue;
    }
    std::printf("  p%u applied %llu commands over %llu slots\n", id,
                static_cast<unsigned long long>(cluster.applied_commands(id)),
                static_cast<unsigned long long>(
                    cluster.applied_slots(id).size()));
  }
  std::printf("stores agree: %s | wall-clock: %lld us | %llu messages, "
              "%llu wall-clock timeouts fired\n",
              cluster.correct_stores_agree() ? "yes" : "NO (bug!)",
              static_cast<long long>(elapsed.count()),
              static_cast<unsigned long long>(cluster.delivered_messages()),
              static_cast<unsigned long long>(cluster.timers_fired()));
  std::printf("(the crashed leader's slots were rescued by view change on "
              "steady-clock timers — the engine::Host seam gives the\n"
              "threaded runtime the clock the simulator always had)\n");
  return 0;
}

}  // namespace

int main() {
  auto cfg = consensus::QuorumConfig::create(/*n=*/9, /*f=*/2, /*t=*/2);

  std::vector<Value> inputs;
  for (std::uint32_t i = 0; i < cfg.n; ++i) {
    inputs.push_back(Value::of_string("cmd-" + std::to_string(i)));
  }

  runtime::ThreadedCluster cluster(cfg, inputs);
  cluster.crash(4);
  cluster.crash(8);

  auto begin = steady_clock::now();
  cluster.start();
  bool decided = cluster.wait_all_correct_decided(seconds(10));
  auto elapsed = duration_cast<microseconds>(steady_clock::now() - begin);

  if (!decided) {
    std::printf("no decision within 10s — something is wrong\n");
    return 1;
  }

  std::printf("9 processes (2 crashed), f = t = 2, real threads:\n");
  for (const auto& [pid, record] : cluster.decisions()) {
    std::printf("  p%u decided \"%s\" in view %llu\n", pid,
                record.value.to_string().c_str(),
                static_cast<unsigned long long>(record.view));
  }
  std::printf("agreement: %s\n", cluster.agreement() ? "yes" : "NO (bug!)");
  std::printf("wall-clock time to full decision: %lld us (%llu messages "
              "delivered)\n",
              static_cast<long long>(elapsed.count()),
              static_cast<unsigned long long>(cluster.delivered_messages()));
  std::printf("\n(the two-message-delay structure is the same as in the\n"
              "simulator; here a \"delay\" is an in-process queue hop of a\n"
              "few microseconds instead of a scripted Delta)\n");

  return run_threaded_smr();
}
