#include <chrono>
#include <cstdio>

#include "runtime/threaded_cluster.hpp"

/// The same protocol, real threads, real clock: nine OS threads (one per
/// process), f = t = 2, two of them crashed — wall-clock time to a
/// Byzantine-fault-tolerant decision.
///
/// Run: ./build/examples/realtime_quickstart

using namespace fastbft;
using namespace std::chrono;

int main() {
  auto cfg = consensus::QuorumConfig::create(/*n=*/9, /*f=*/2, /*t=*/2);

  std::vector<Value> inputs;
  for (std::uint32_t i = 0; i < cfg.n; ++i) {
    inputs.push_back(Value::of_string("cmd-" + std::to_string(i)));
  }

  runtime::ThreadedCluster cluster(cfg, inputs);
  cluster.crash(4);
  cluster.crash(8);

  auto begin = steady_clock::now();
  cluster.start();
  bool decided = cluster.wait_all_correct_decided(seconds(10));
  auto elapsed = duration_cast<microseconds>(steady_clock::now() - begin);

  if (!decided) {
    std::printf("no decision within 10s — something is wrong\n");
    return 1;
  }

  std::printf("9 processes (2 crashed), f = t = 2, real threads:\n");
  for (const auto& [pid, record] : cluster.decisions()) {
    std::printf("  p%u decided \"%s\" in view %llu\n", pid,
                record.value.to_string().c_str(),
                static_cast<unsigned long long>(record.view));
  }
  std::printf("agreement: %s\n", cluster.agreement() ? "yes" : "NO (bug!)");
  std::printf("wall-clock time to full decision: %lld us (%llu messages "
              "delivered)\n",
              static_cast<long long>(elapsed.count()),
              static_cast<unsigned long long>(cluster.delivered_messages()));
  std::printf("\n(the two-message-delay structure is the same as in the\n"
              "simulator; here a \"delay\" is an in-process queue hop of a\n"
              "few microseconds instead of a scripted Delta)\n");
  return 0;
}
