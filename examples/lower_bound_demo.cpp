#include <cstdio>

#include "adversary/lower_bound.hpp"

/// Walks through the Theorem 4.5 lower-bound attack step by step — the
/// "executable proof sketch" companion to Section 4 of the paper.
///
/// Run: ./build/examples/lower_bound_demo

int main() {
  std::printf(
      "The paper proves (Theorem 4.5): no f-resilient consensus protocol\n"
      "that decides in two message delays with up to t actual faults can\n"
      "run on 3f + 2t - 2 processes. This demo executes the adversarial\n"
      "schedule from that proof against this library's own protocol,\n"
      "instantiated (unsafely) one process below its bound.\n\n"
      "With f = t = 2, the bound is 3*2 + 2*2 - 1 = 9 processes.\n\n"
      "The schedule (see src/adversary/lower_bound.hpp):\n"
      "  1. the view-1 leader p0 equivocates: value x to one group,\n"
      "     value y to another; an accomplice acks both;\n"
      "  2. a single 'early decider' receives a full fast quorum of acks\n"
      "     for x and decides after two message delays;\n"
      "  3. the pre-GST network delays every other ack, and delays the\n"
      "     early decider's view-change vote;\n"
      "  4. the view-2 leader honestly collects n - f votes — which now\n"
      "     contain too few x-votes to force x — concludes 'any value is\n"
      "     safe', and gets honest verifiers to certify its own value y.\n\n");

  std::printf("========== n = 8 (one below the bound) ==========\n%s\n",
              fastbft::adversary::run_lower_bound_attack(8).describe().c_str());

  std::printf(
      "The selection rule needed f + t = 4 votes for x among the n - f = 6\n"
      "non-equivocator votes to force x, but the adversary arranged only 3\n"
      "(four correct processes acked x; one vote was delayed). Disagreement.\n\n");

  std::printf("========== n = 9 (the paper's bound) ==========\n%s\n",
              fastbft::adversary::run_lower_bound_attack(9).describe().c_str());

  std::printf(
      "With one more process the same schedule leaves 4 = f + t votes for x\n"
      "among the n - f = 7 non-equivocator votes: the selection algorithm is\n"
      "forced to re-propose x, and everyone agrees. The quorum arithmetic\n"
      "(QI2 of Section 3.3) is exactly tight at n = 3f + 2t - 1.\n");
  return 0;
}
